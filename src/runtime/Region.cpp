//===- runtime/Region.cpp -------------------------------------*- C++ -*-===//

#include "runtime/Region.h"

#include <algorithm>
#include <cstring>

#include "support/Error.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"

using namespace distal;

static std::vector<Coord> rowMajorStrides(const std::vector<Coord> &Extents) {
  std::vector<Coord> Strides(Extents.size(), 1);
  for (int I = static_cast<int>(Extents.size()) - 2; I >= 0; --I)
    Strides[I] = Strides[I + 1] * Extents[I + 1];
  return Strides;
}

namespace {

/// Decomposition of the points of a rectangle into contiguous innermost
/// runs, contiguous on *both* sides of a region<->instance copy: the run
/// spans the trailing dimensions the rectangle covers fully (plus the
/// innermost partial one), so both the row-major region offsets and the
/// row-major instance offsets advance by 1 within a run.
struct RunDecomposition {
  int64_t NumRuns = 0;
  int64_t RunLen = 0;
  int OuterDims = 0; ///< Dims iterated by the odometer, [0, OuterDims).
};

RunDecomposition decomposeRuns(const Rect &R,
                               const std::vector<Coord> &Shape) {
  RunDecomposition D;
  if (R.isEmpty() && R.dim() > 0)
    return D;
  int Dim = R.dim();
  if (Dim == 0) { // Scalar region: one run of one element.
    D.NumRuns = 1;
    D.RunLen = 1;
    return D;
  }
  // Cut: smallest dim index such that every deeper dim is fully covered.
  int Cut = Dim - 1;
  while (Cut > 0 && R.lo()[Cut] == 0 && R.hi()[Cut] == Shape[Cut])
    --Cut;
  D.OuterDims = Cut;
  D.RunLen = 1;
  for (int I = Cut; I < Dim; ++I)
    D.RunLen *= R.hi()[I] - R.lo()[I];
  D.NumRuns = 1;
  for (int I = 0; I < Cut; ++I)
    D.NumRuns *= R.hi()[I] - R.lo()[I];
  return D;
}

/// Invokes Fn(RegionOff, InstOff, RunLen) for runs [RunLo, RunHi) of \p R
/// under decomposition \p D. \p RegStrides are the row-major strides of the
/// full region whose shape is \p Shape; instance offsets are row-major over
/// the rectangle extents. Restartable at any run index so large copies can
/// fan out over disjoint run ranges.
template <typename Fn>
void forEachRunRange(const Rect &R, const std::vector<Coord> &Shape,
                     const std::vector<Coord> &RegStrides,
                     const RunDecomposition &D, int64_t RunLo, int64_t RunHi,
                     const Fn &Body) {
  if (RunLo >= RunHi)
    return;
  int Dim = R.dim();
  int64_t RegOff = 0;
  for (int I = 0; I < Dim; ++I)
    RegOff += R.lo()[I] * RegStrides[I];
  // Seed the outer-dim odometer at RunLo, then maintain the region offset
  // incrementally; the instance side is contiguous across runs.
  std::vector<Coord> Idx(D.OuterDims, 0);
  int64_t Rem = RunLo;
  for (int I = D.OuterDims - 1; I >= 0; --I) {
    Coord Extent = R.hi()[I] - R.lo()[I];
    Idx[I] = Rem % Extent;
    Rem /= Extent;
    RegOff += Idx[I] * RegStrides[I];
  }
  int64_t InstOff = RunLo * D.RunLen;
  for (int64_t Run = RunLo; Run < RunHi; ++Run) {
    Body(RegOff, InstOff, D.RunLen);
    InstOff += D.RunLen;
    for (int I = D.OuterDims - 1; I >= 0; --I) {
      RegOff += RegStrides[I];
      if (++Idx[I] < R.hi()[I] - R.lo()[I])
        break;
      RegOff -= (R.hi()[I] - R.lo()[I]) * RegStrides[I];
      Idx[I] = 0;
    }
  }
}

/// Invokes Fn(RegionOff, InstOff, RunLen) for every contiguous run of \p R.
template <typename Fn>
void forEachRun(const Rect &R, const std::vector<Coord> &Shape,
                const std::vector<Coord> &RegStrides, const Fn &Body) {
  RunDecomposition D = decomposeRuns(R, Shape);
  forEachRunRange(R, Shape, RegStrides, D, 0, D.NumRuns, Body);
}

/// Copies below this many elements are not worth a fan-out.
constexpr int64_t CopyParallelCutoff = 1 << 17;

} // namespace

Instance::Instance(Rect R) { reset(std::move(R)); }

static int64_t loCornerOffset(const Rect &Bounds,
                              const std::vector<Coord> &Strides) {
  int64_t Off = 0;
  for (int I = 0; I < Bounds.dim(); ++I)
    Off -= Bounds.lo()[I] * Strides[I];
  return Off;
}

void Instance::reset(Rect R) {
  Bounds = std::move(R);
  View = nullptr;
  std::vector<Coord> Extents(Bounds.dim());
  for (int I = 0; I < Bounds.dim(); ++I)
    Extents[I] = std::max<Coord>(Bounds.hi()[I] - Bounds.lo()[I], 0);
  Strides = rowMajorStrides(Extents);
  BaseOff = loCornerOffset(Bounds, Strides);
  size_t Vol = static_cast<size_t>(Bounds.dim() == 0 ? 1 : Bounds.volume());
  if (Data.size() != Vol) {
    FaultInjector::inject(FaultInjector::Site::Alloc);
    Data.resize(Vol, 0.0);
  }
}

void Instance::reserve(int64_t Elems) {
  FaultInjector::inject(FaultInjector::Site::Alloc);
  Data.reserve(static_cast<size_t>(std::max<int64_t>(Elems, 1)));
}

void Instance::bindView(double *Ptr, Rect R,
                        const std::vector<Coord> &ViewStrides) {
  DISTAL_ASSERT(Ptr != nullptr, "view bound to null storage");
  DISTAL_ASSERT(static_cast<int>(ViewStrides.size()) == R.dim(),
                "view stride dimension mismatch");
  Bounds = std::move(R);
  Strides = ViewStrides;
  BaseOff = loCornerOffset(Bounds, Strides);
  View = Ptr; // offset(lo) == 0, so data()[offset(lo)] lands on *Ptr.
}

int64_t Instance::offset(const Point &Global) const {
  DISTAL_ASSERT(Bounds.contains(Global), "instance access out of bounds");
  int64_t Off = BaseOff;
  for (int I = 0; I < Bounds.dim(); ++I)
    Off += Global[I] * Strides[I];
  return Off;
}

int64_t Instance::stride(int D) const {
  DISTAL_ASSERT(D >= 0 && D < Bounds.dim(), "stride dimension out of range");
  return Strides[D];
}

void Instance::zero() {
  DISTAL_ASSERT(!isView(), "zero() on a view would clobber region storage");
  if (!Data.empty())
    std::memset(Data.data(), 0, Data.size() * sizeof(double));
}

Instance &Instance::back() {
  if (!Back)
    Back = std::make_unique<Instance>();
  return *Back;
}

void Instance::flip() {
  DISTAL_ASSERT(Back != nullptr, "flip() on an instance without a back buffer");
  DISTAL_ASSERT(!isView() && !Back->isView(),
                "a viewed instance never flips: views alias region storage "
                "and must not be promoted over a prefetched buffer");
  std::swap(Bounds, Back->Bounds);
  std::swap(Strides, Back->Strides);
  std::swap(BaseOff, Back->BaseOff);
  std::swap(Data, Back->Data);
  // Swapped alongside the rest so even an assert-stripped build promotes
  // the gathered buffer coherently instead of aliasing stale storage.
  std::swap(View, Back->View);
}

Region::Region(TensorVar Var, Format Fmt, Machine M)
    : Var(std::move(Var)), Fmt(std::move(Fmt)), M(std::move(M)) {
  DISTAL_ASSERT(this->Var.defined(), "region over undefined tensor");
  if (this->Fmt.order() != this->Var.order())
    reportFatalError("format order does not match tensor '" +
                     this->Var.name() + "'");
  this->Fmt.distribution().validate(this->Var.order(), this->M);
  Strides = rowMajorStrides(shape());
  int64_t Vol = 1;
  for (Coord D : shape())
    Vol *= D;
  Data.assign(static_cast<size_t>(Vol), 0.0);
  MemCharge.add(Vol * 8);
}

int64_t Region::volume() const { return static_cast<int64_t>(Data.size()); }

int64_t Region::offset(const Point &P) const {
  DISTAL_ASSERT(P.dim() == Var.order(), "region access dimension mismatch");
  int64_t Off = 0;
  for (int I = 0; I < P.dim(); ++I) {
    DISTAL_ASSERT(P[I] >= 0 && P[I] < shape()[I], "region access out of range");
    Off += P[I] * Strides[I];
  }
  return Off;
}

void Region::fill(const std::function<double(const Point &)> &Fn) {
  Rect::forExtents(shape()).forEachPoint(
      [&](const Point &P) { at(P) = Fn(P); });
}

void Region::fillRandom(uint64_t Seed) {
  uint64_t State = Seed * 2654435761u + 12345;
  for (double &V : Data) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    V = static_cast<double>((State >> 33) % 1000) / 999.0 - 0.5;
  }
}

void Region::zero() {
  if (!Data.empty())
    std::memset(Data.data(), 0, Data.size() * sizeof(double));
}

Instance Region::gather(const Rect &R) const { return gather(R, {}); }

Instance Region::gather(const Rect &R, const LeafParallelism &LP) const {
  Instance I(R);
  gatherInto(I, LP);
  return I;
}

void Region::gatherInto(Instance &I, const LeafParallelism &LP) const {
  const Rect &R = I.rect();
  DISTAL_ASSERT(Rect::forExtents(shape()).contains(R) || R.isEmpty(),
                "gather rectangle outside region bounds");
  DISTAL_ASSERT(!I.isView(), "gather into a view would clobber region "
                             "storage");
  double *Dst = I.data();
  const double *Src = Data.data();
  RunDecomposition D = decomposeRuns(R, shape());
  auto CopyRun = [&](int64_t RegOff, int64_t InstOff, int64_t Len) {
    std::memcpy(Dst + InstOff, Src + RegOff,
                static_cast<size_t>(Len) * sizeof(double));
  };
  if (!LP.enabled() || D.NumRuns * D.RunLen < CopyParallelCutoff) {
    forEachRunRange(R, shape(), Strides, D, 0, D.NumRuns, CopyRun);
    return;
  }
  if (D.NumRuns == 1) {
    // Fully contiguous rectangle: split the single memcpy into sub-ranges.
    int64_t RegBase = 0;
    for (int Dim = 0; Dim < R.dim(); ++Dim)
      RegBase += R.lo()[Dim] * Strides[Dim];
    LP.Pool->parallelForWays(D.RunLen, LP.Ways, [&](int64_t Lo, int64_t Hi) {
      std::memcpy(Dst + Lo, Src + RegBase + Lo,
                  static_cast<size_t>(Hi - Lo) * sizeof(double));
    });
    return;
  }
  // Runs target disjoint instance ranges: any run split copies the same
  // bytes, just on different threads.
  LP.Pool->parallelForWays(D.NumRuns, LP.Ways, [&](int64_t Lo, int64_t Hi) {
    forEachRunRange(R, shape(), Strides, D, Lo, Hi, CopyRun);
  });
}

GatherRuns distal::compileGatherRuns(const Rect &R,
                                     const std::vector<Coord> &Shape) {
  GatherRuns GR;
  std::vector<Coord> RegStrides = rowMajorStrides(Shape);
  RunDecomposition D = decomposeRuns(R, Shape);
  GR.RunLen = D.RunLen;
  for (int I = 0; I < R.dim(); ++I)
    GR.RegBase += R.lo()[I] * RegStrides[I];
  if (D.NumRuns == 0) { // Empty rectangle: nothing to copy.
    GR.Count0 = GR.Count1 = 0;
    return GR;
  }
  switch (D.OuterDims) {
  case 0:
    break; // One run; the defaults (1 x 1 grid) already describe it.
  case 1:
    GR.Count1 = R.hi()[0] - R.lo()[0];
    GR.Stride1 = RegStrides[0];
    break;
  case 2:
    GR.Count0 = R.hi()[0] - R.lo()[0];
    GR.Stride0 = RegStrides[0];
    GR.Count1 = R.hi()[1] - R.lo()[1];
    GR.Stride1 = RegStrides[1];
    break;
  default:
    GR.General = true; // > 3D rectangle with a partial prefix: odometer.
    break;
  }
  return GR;
}

void Region::gatherCompiled(Instance &I, const GatherRuns &GR,
                            const LeafParallelism &LP) const {
  if (GR.General) {
    gatherInto(I, LP);
    return;
  }
  DISTAL_ASSERT(!I.isView(), "gather into a view would clobber region "
                             "storage");
  int64_t NumRuns = GR.numRuns();
  if (NumRuns == 0 || GR.RunLen == 0)
    return;
  double *Dst = I.data();
  const double *Src = Data.data() + GR.RegBase;
  size_t RunBytes = static_cast<size_t>(GR.RunLen) * sizeof(double);
  if (!LP.enabled() || NumRuns * GR.RunLen < CopyParallelCutoff) {
    double *D = Dst;
    for (int64_t I0 = 0; I0 < GR.Count0; ++I0) {
      const double *S0 = Src + I0 * GR.Stride0;
      for (int64_t I1 = 0; I1 < GR.Count1; ++I1, D += GR.RunLen)
        std::memcpy(D, S0 + I1 * GR.Stride1, RunBytes);
    }
    return;
  }
  if (NumRuns == 1) {
    // Fully contiguous rectangle: split the single memcpy into sub-ranges.
    LP.Pool->parallelForWays(GR.RunLen, LP.Ways, [&](int64_t Lo, int64_t Hi) {
      std::memcpy(Dst + Lo, Src + Lo,
                  static_cast<size_t>(Hi - Lo) * sizeof(double));
    });
    return;
  }
  // Runs target disjoint instance ranges: any run split copies the same
  // bytes, just on different threads.
  LP.Pool->parallelForWays(NumRuns, LP.Ways, [&](int64_t Lo, int64_t Hi) {
    for (int64_t Run = Lo; Run < Hi; ++Run) {
      int64_t I0 = Run / GR.Count1, I1 = Run % GR.Count1;
      std::memcpy(Dst + Run * GR.RunLen,
                  Src + I0 * GR.Stride0 + I1 * GR.Stride1, RunBytes);
    }
  });
}

void Region::bindView(Instance &I, const Rect &R) {
  DISTAL_ASSERT(Rect::forExtents(shape()).contains(R) || R.isEmpty(),
                "view rectangle outside region bounds");
  int64_t Base = 0;
  for (int D = 0; D < R.dim(); ++D)
    Base += R.lo()[D] * Strides[D];
  I.bindView(Data.data() + Base, R, Strides);
}

void Region::reduceBack(const Instance &I) {
  DISTAL_ASSERT(Rect::forExtents(shape()).contains(I.rect()) ||
                    I.rect().isEmpty(),
                "instance rectangle outside region bounds");
  DISTAL_ASSERT(!I.isView(), "writeback of a view: an aliased accumulator "
                             "already lives in the region and is elided");
  double *Dst = Data.data();
  const double *Src = I.data();
  forEachRun(I.rect(), shape(), Strides,
             [&](int64_t RegOff, int64_t InstOff, int64_t Len) {
               double *__restrict__ D = Dst + RegOff;
               const double *__restrict__ S = Src + InstOff;
               for (int64_t E = 0; E < Len; ++E)
                 D[E] += S[E];
             });
}

void Region::reduceBackRows(const Instance &I, Coord RowLo, Coord RowHi) {
  DISTAL_ASSERT(!I.isView(), "writeback of a view: an aliased accumulator "
                             "already lives in the region and is elided");
  const Rect &R = I.rect();
  if (R.dim() == 0) { // Scalar: assigned to stripe containing row 0.
    if (RowLo <= 0 && 0 < RowHi)
      reduceBack(I);
    return;
  }
  Coord Lo = std::max(R.lo()[0], RowLo), Hi = std::min(R.hi()[0], RowHi);
  if (Lo >= Hi)
    return;
  std::vector<Coord> ClampLo = R.lo().coords(), ClampHi = R.hi().coords();
  ClampLo[0] = Lo;
  ClampHi[0] = Hi;
  Rect Clamped{Point(ClampLo), Point(ClampHi)};
  double *Dst = Data.data();
  const double *Src = I.data();
  // Instance offsets must be relative to the *original* rect, so shift by
  // the rows we skipped.
  int64_t InstShift = (Lo - R.lo()[0]) * I.stride(0);
  forEachRun(Clamped, shape(), Strides,
             [&](int64_t RegOff, int64_t InstOff, int64_t Len) {
               double *__restrict__ D = Dst + RegOff;
               const double *__restrict__ S = Src + InstShift + InstOff;
               for (int64_t E = 0; E < Len; ++E)
                 D[E] += S[E];
             });
}

void Region::writeBack(const Instance &I) {
  DISTAL_ASSERT(Rect::forExtents(shape()).contains(I.rect()) ||
                    I.rect().isEmpty(),
                "instance rectangle outside region bounds");
  DISTAL_ASSERT(!I.isView(), "writeback of a view: aliased data already "
                             "lives in the region");
  double *Dst = Data.data();
  const double *Src = I.data();
  forEachRun(I.rect(), shape(), Strides,
             [&](int64_t RegOff, int64_t InstOff, int64_t Len) {
               std::memcpy(Dst + RegOff, Src + InstOff,
                           static_cast<size_t>(Len) * sizeof(double));
             });
}

Instance Region::gatherPointwise(const Rect &R) const {
  Instance I(R);
  gatherIntoPointwise(I);
  return I;
}

void Region::gatherIntoPointwise(Instance &I) const {
  const Rect &R = I.rect();
  DISTAL_ASSERT(Rect::forExtents(shape()).contains(R) || R.isEmpty(),
                "gather rectangle outside region bounds");
  DISTAL_ASSERT(!I.isView(), "gather into a view would clobber region "
                             "storage");
  // Element-by-element copy (the interpreted strategy's fallback), but with
  // both offsets maintained incrementally by an odometer: the strides are
  // fixed per dimension, so re-deriving them per coordinate through
  // Point-based at() calls only burned time.
  int Dim = R.dim();
  if (Dim == 0) { // Scalar region: one element.
    I.data()[0] = Data[0];
    return;
  }
  if (R.isEmpty())
    return;
  double *Dst = I.data();
  const double *Src = Data.data();
  int64_t RegOff = 0;
  for (int D = 0; D < Dim; ++D)
    RegOff += R.lo()[D] * Strides[D];
  Coord InnerExtent = R.hi()[Dim - 1] - R.lo()[Dim - 1];
  std::vector<Coord> Idx(Dim > 1 ? Dim - 1 : 0, 0);
  int64_t InstOff = 0;
  for (;;) {
    // Innermost dimension: both sides advance by their unit stride
    // (row-major region => innermost region stride is 1).
    for (Coord E = 0; E < InnerExtent; ++E)
      Dst[InstOff + E] = Src[RegOff + E];
    InstOff += InnerExtent;
    int D = Dim - 2;
    for (; D >= 0; --D) {
      RegOff += Strides[D];
      if (++Idx[D] < R.hi()[D] - R.lo()[D])
        break;
      RegOff -= (R.hi()[D] - R.lo()[D]) * Strides[D];
      Idx[D] = 0;
    }
    if (D < 0)
      break;
  }
}

void Region::reduceBackPointwise(const Instance &I) {
  I.rect().forEachPoint([&](const Point &P) { at(P) += I.at(P); });
}

void Region::writeBackPointwise(const Instance &I) {
  I.rect().forEachPoint([&](const Point &P) { at(P) = I.at(P); });
}

Rect Region::ownedRect(const Point &Proc) const {
  return Fmt.distribution().ownedRect(shape(), M, Proc);
}
