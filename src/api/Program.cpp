//===- api/Program.cpp ----------------------------------------*- C++ -*-===//

#include "api/Program.h"

#include "runtime/PlanCache.h"
#include "support/Error.h"

using namespace distal;

namespace {

/// Program-run analogue of the evaluate family's region anchor: shared
/// ownership of (and an execution pin on) every Region the program
/// touches, held until the execution completes so machine-change rebuilds
/// and tensor destruction can never free storage under a running program.
struct ProgramRegionHold {
  std::vector<std::shared_ptr<Region>> Regions;

  void add(std::shared_ptr<Region> R) {
    R->pin();
    Regions.push_back(std::move(R));
  }
  ~ProgramRegionHold() {
    for (const std::shared_ptr<Region> &R : Regions)
      R->unpin();
  }
};

} // namespace

/// Everything one program run needs, built under the api mutex: the linked
/// artifact, the materialised region map, the snapshotted options, and the
/// region anchor.
struct Program::Prepared {
  std::shared_ptr<CompiledProgram> Prog;
  std::map<TensorVar, Region *> Regions;
  ExecOptions Opts;
  std::shared_ptr<void> Hold;
};

Program &Program::add(Tensor &T) {
  Stmts.push_back(&T);
  return *this;
}

std::shared_ptr<CompiledProgram> Program::compile(const Machine &M) {
  std::lock_guard<std::mutex> Lock(Tensor::apiMu());
  if (Stmts.empty())
    throwError(ErrorCode::InvalidArgument,
               "Program has no statements; call add() first");

  // Member statements compile (or cache-hit) through the plan cache; the
  // memoized per-tensor key doubles as the program key component.
  std::vector<std::shared_ptr<CompiledPlan>> CPs;
  std::vector<std::string> Keys;
  CPs.reserve(Stmts.size());
  Keys.reserve(Stmts.size());
  for (Tensor *T : Stmts) {
    CPs.push_back(T->compileLocked(M));
    Keys.push_back(T->MemoKey);
  }
  std::vector<const Plan *> Plans;
  Plans.reserve(CPs.size());
  for (const std::shared_ptr<CompiledPlan> &CP : CPs)
    Plans.push_back(&CP->plan());
  Status V = validateProgramPlans(Plans);
  if (!V.ok())
    throwStatus(std::move(V));

  std::string PKey = PlanCache::programKeyFor(Keys);
  if (std::shared_ptr<CompiledProgram> Cached =
          PlanCache::global().findProgram(PKey)) {
    // A cached program holding an explicitly poisoned member must not be
    // served (mirror of the plan-side eviction in compileLocked).
    bool Stale = false;
    for (size_t I = 0; I < Cached->size(); ++I)
      Stale |= Cached->member(I).poisoned();
    if (!Stale)
      return Cached;
    PlanCache::global().invalidateProgram(PKey);
  }
  auto Prog = std::make_shared<CompiledProgram>(std::move(CPs));
  PlanCache::global().putProgram(PKey, Prog);
  return Prog;
}

StatusOr<std::shared_ptr<CompiledProgram>> Program::tryCompile(
    const Machine &M) {
  try {
    return compile(M);
  } catch (...) {
    return statusFromCurrentException();
  }
}

Program::Prepared Program::prepare(const Machine &M) {
  Prepared R;
  R.Prog = compile(M);
  std::lock_guard<std::mutex> Lock(Tensor::apiMu());
  // Materialise every tensor of the chain, in program order. A tensor
  // whose first touch is a pure write is about to be zeroed by its
  // statement's zero node — its old data need not survive a machine
  // change; everything else (inputs, read-before-written tensors,
  // outputs also read by their own statement) carries its values over.
  std::map<TensorVar, bool> Preserve;
  for (size_t I = 0; I < R.Prog->size(); ++I) {
    const Assignment &Stmt = R.Prog->member(I).plan().Nest.Stmt;
    const TensorVar &Out = Stmt.lhs().tensor();
    for (const Access &A : Stmt.rhsAccesses())
      Preserve.emplace(A.tensor(), true);
    Preserve.emplace(Out, false);
  }
  auto Hold = std::make_shared<ProgramRegionHold>();
  for (const auto &[TV, Keep] : Preserve) {
    const std::shared_ptr<Region> &Rg =
        Tensor::lookupTensor(TV).materialize(M, /*PreserveData=*/Keep);
    R.Regions[TV] = Rg.get();
    Hold->add(Rg);
  }
  R.Hold = std::move(Hold);
  R.Opts = ExecOpts;
  R.Opts.Mode = TraceMode::Off;
  return R;
}

void Program::evaluate(const Machine &M) {
  Status S = tryEvaluate(M);
  if (!S.ok())
    throwStatus(std::move(S));
}

Status Program::tryEvaluate(const Machine &M) {
  try {
    Prepared R = prepare(M);
    // Synchronous run; the Hold (local) keeps every region alive and
    // pinned for the duration.
    return R.Prog->tryExecute(R.Regions, R.Opts);
  } catch (...) {
    return statusFromCurrentException();
  }
}

ProgramFuture Program::evaluateAsync(const Machine &M) {
  Prepared R = prepare(M);
  // The keeper anchors both the artifact (a PlanCache eviction between
  // submit and wait must not destroy it under the pending execution) and
  // the pinned regions, released when the execution completes.
  struct Keeper {
    std::shared_ptr<CompiledProgram> Prog;
    std::shared_ptr<void> Hold;
  };
  auto K = std::make_shared<Keeper>();
  K->Prog = R.Prog;
  K->Hold = std::move(R.Hold);
  return R.Prog->submit(R.Regions, R.Opts, std::move(K));
}
