//===- api/Tensor.cpp -----------------------------------------*- C++ -*-===//

#include "api/Tensor.h"

#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "api/Program.h"
#include "lower/Lower.h"
#include "runtime/PlanCache.h"
#include "support/Error.h"

using namespace distal;

namespace {

/// Registry resolving TensorVars back to their owning api::Tensor, so that
/// evaluate() can find operand formats and data fills. Entries are removed
/// when tensors are destroyed.
std::map<TensorVar, Tensor *> &registry() {
  static std::map<TensorVar, Tensor *> R;
  return R;
}
std::mutex &registryMutex() {
  static std::mutex M;
  return M;
}

Tensor &lookup(const TensorVar &V) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  auto It = registry().find(V);
  if (It == registry().end())
    reportFatalError("tensor '" + V.name() +
                     "' is not backed by a live distal::Tensor");
  return *It->second;
}

/// Serializes the evaluate-family front half across all tensors: the
/// compile-memo writes (MemoKey/MemoMachine) and the Region
/// materialisation of the statement's tensors are shared mutable state.
/// Never held during an execution — executions run concurrently through
/// the artifact's admission queue. Process-wide (not per-tensor) because
/// one evaluation materialises its *operand* tensors' regions too.
std::mutex &apiMutex() {
  static std::mutex M;
  return M;
}

/// The RunAnchor of one admitted evaluation: shared ownership of every
/// Region the execution touches, plus an execution pin on each. Held by
/// the admission request until the execution completes, so (a) the storage
/// cannot be freed under the execution by a machine-change rebuild or a
/// tensor's destruction, and (b) Tensor::materialize can wait for pinned()
/// to drain before copying data out of a region a pending execution may
/// still be writing. Deliberately does NOT own the artifact (see the
/// RunAnchor contract in AdmissionQueue::submit): artifact lifetime across
/// a pending wait is the future's Keeper's job, and an artifact whose
/// queue still holds requests shuts the queue down safely on destruction.
struct RegionHold {
  std::vector<std::shared_ptr<Region>> Regions;

  void add(std::shared_ptr<Region> R) {
    R->pin();
    Regions.push_back(std::move(R));
  }
  ~RegionHold() {
    for (const std::shared_ptr<Region> &R : Regions)
      R->unpin();
  }
};

/// Blocks until no in-flight execution pins \p R. Only called for a region
/// about to be replaced on a machine change; every Tensor-submitted
/// execution either runs synchronously under its caller's wait (Deferred)
/// or was dispatched to the pool at admission (Background), so the pins
/// always drain without our help.
void drainPins(const Region &R) {
  while (R.pinned() > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(50));
}

} // namespace

TensorAccess::TensorAccess(Tensor &T, std::vector<IndexVar> Indices)
    : T(T), Indices(std::move(Indices)) {}

TensorAccess &TensorAccess::operator=(const Expr &Rhs) {
  T.defineComputation(Assignment(Access(T.var(), Indices), Rhs));
  return *this;
}

TensorAccess::operator Expr() const {
  return Expr(Access(T.var(), Indices));
}

TensorAccess::operator Access() const { return Access(T.var(), Indices); }

Tensor::Tensor(std::string Name, std::vector<Coord> Dims, Format Fmt)
    : Var(std::move(Name), std::move(Dims)), Fmt(std::move(Fmt)) {
  if (this->Fmt.order() != Var.order())
    reportFatalError("format order does not match tensor '" + Var.name() +
                     "'");
  std::lock_guard<std::mutex> Lock(registryMutex());
  registry()[Var] = this;
}

Tensor::~Tensor() {
  std::lock_guard<std::mutex> Lock(registryMutex());
  registry().erase(Var);
}

void Tensor::defineComputation(Assignment Stmt) {
  Sched = std::make_unique<Schedule>(std::move(Stmt));
  MemoKey.clear();
}

Schedule &Tensor::schedule() {
  if (!Sched)
    reportFatalError("tensor '" + Var.name() +
                     "' has no computation to schedule");
  // Any scheduling access may mutate the nest; the next compile must
  // re-derive the cache key.
  MemoKey.clear();
  return *Sched;
}

void Tensor::fillRandom(uint64_t Seed) {
  fill([Seed, State = uint64_t(0)](const Point &) mutable {
    // Match Region::fillRandom's stream.
    if (State == 0)
      State = Seed * 2654435761u + 12345;
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((State >> 33) % 1000) / 999.0 - 0.5;
  });
}

void Tensor::fill(std::function<double(const Point &)> Fn) {
  PendingFill = std::move(Fn);
  if (Reg)
    Reg->fill(PendingFill);
}

const std::shared_ptr<Region> &Tensor::materialize(const Machine &M,
                                                   bool PreserveData) {
  // The backing Region persists across repeated evaluations (the
  // steady-state path never reallocates output storage). A machine change
  // rebuilds it for the new home distribution, carrying the element
  // values over when asked — data computed by a previous evaluate() (not
  // just pending fills) must survive for tensors read as operands, e.g.
  // one produced on machine A and consumed on machine B. Callers pass
  // PreserveData = false for a pure output, whose contents are about to
  // be zeroed anyway.
  if (Reg && Reg->machine().str() != M.str()) {
    std::shared_ptr<Region> Old = std::move(Reg);
    // In-flight executions may still be writing the old storage; wait for
    // their pins to drain before reading values out of it. New pins cannot
    // appear: pinning only happens under the api mutex, which we hold. The
    // old storage itself stays alive as long as any execution anchors it,
    // whatever we do with our reference.
    drainPins(*Old);
    Reg = std::make_shared<Region>(Var, Fmt, M);
    if (PreserveData)
      Rect::forExtents(Var.shape()).forEachPoint(
          [&](const Point &P) { Reg->at(P) = Old->at(P); });
    else if (PendingFill)
      Reg->fill(PendingFill);
  }
  if (!Reg) {
    Reg = std::make_shared<Region>(Var, Fmt, M);
    if (PendingFill)
      Reg->fill(PendingFill);
  }
  return Reg;
}

Plan Tensor::lower(const Machine &M) {
  if (!Sched)
    reportFatalError("tensor '" + Var.name() + "' has no computation");
  std::map<TensorVar, Format> Formats;
  for (const TensorVar &T : Sched->nest().Stmt.tensors())
    Formats.emplace(T, lookup(T).format());
  return distal::lower(Sched->nest(), M, std::move(Formats));
}

std::shared_ptr<CompiledPlan> Tensor::compile(const Machine &M) {
  std::lock_guard<std::mutex> Lock(apiMutex());
  return compileLocked(M);
}

std::shared_ptr<CompiledPlan> Tensor::compileLocked(const Machine &M) {
  // Steady state: the memoized key skips lowering and fingerprinting but
  // still goes through the PlanCache, so explicit invalidation (or LRU
  // eviction) always forces a true recompile below.
  if (!MemoKey.empty() && MemoMachine == M.str())
    if (std::shared_ptr<CompiledPlan> Cached =
            PlanCache::global().find(MemoKey)) {
      // A poisoned artifact (uncontained execution failure) must never be
      // served again; evict and fall through to a true recompile.
      if (!Cached->poisoned())
        return Cached;
      PlanCache::global().invalidate(MemoKey);
    }
  Plan P = lower(M);
  std::string Key = PlanCache::keyFor(P, LeafStrategy::Compiled);
  MemoMachine = M.str();
  MemoKey = Key;
  if (std::shared_ptr<CompiledPlan> Cached = PlanCache::global().find(Key)) {
    if (!Cached->poisoned())
      return Cached;
    PlanCache::global().invalidate(Key);
  }
  auto CP = std::make_shared<CompiledPlan>(std::move(P));
  PlanCache::global().put(Key, CP);
  return CP;
}

std::string Tensor::planKey(const Machine &M) {
  return PlanCache::keyFor(lower(M), LeafStrategy::Compiled);
}

Trace Tensor::runCompiled(CompiledPlan &CP, const Machine &M,
                          TraceMode Mode) {
  const Assignment &Stmt = CP.plan().Nest.Stmt;
  const TensorVar &Out = Stmt.lhs().tensor();
  bool OutIsRead = false;
  for (const Access &A : Stmt.rhsAccesses())
    OutIsRead |= A.tensor() == Out;
  std::map<TensorVar, Region *> Regions;
  // Hold the regions (pinned) for the duration of this synchronous
  // execution, so a concurrent evaluation's machine change cannot rebuild
  // them under us; materialisation itself needs the api mutex.
  RegionHold Hold;
  {
    std::lock_guard<std::mutex> Lock(apiMutex());
    for (const TensorVar &T : Stmt.tensors()) {
      const std::shared_ptr<Region> &R =
          lookup(T).materialize(M, /*PreserveData=*/T != Out || OutIsRead);
      Regions[T] = R.get();
      Hold.add(R);
    }
  }
  ExecOptions Opts = ExecOpts;
  Opts.Mode = Mode;
  return CP.execute(Regions, Opts);
}

StatusOr<std::shared_ptr<CompiledPlan>> Tensor::tryCompile(const Machine &M) {
  try {
    return compile(M);
  } catch (...) {
    return statusFromCurrentException();
  }
}

Tensor::PreparedRun Tensor::prepareRun(const Machine &M, TraceMode Mode) {
  std::lock_guard<std::mutex> Lock(apiMutex());
  PreparedRun R;
  R.CP = compileLocked(M);
  const Assignment &Stmt = R.CP->plan().Nest.Stmt;
  const TensorVar &Out = Stmt.lhs().tensor();
  bool OutIsRead = false;
  for (const Access &A : Stmt.rhsAccesses())
    OutIsRead |= A.tensor() == Out;
  auto Hold = std::make_shared<RegionHold>();
  for (const TensorVar &T : Stmt.tensors()) {
    const std::shared_ptr<Region> &Rg =
        lookup(T).materialize(M, /*PreserveData=*/T != Out || OutIsRead);
    R.Regions[T] = Rg.get();
    Hold->add(Rg);
  }
  R.Hold = std::move(Hold);
  R.Opts = ExecOpts;
  R.Opts.Mode = Mode;
  return R;
}

void Tensor::evaluate(const Machine &M) {
  PreparedRun R = prepareRun(M, TraceMode::Off);
  // Deferred: we wait immediately, so the claim happens on this thread
  // unless a concurrent identical request already runs (then we coalesce
  // and just wait for it).
  ExecFuture F = R.CP->submit(R.Regions, R.Opts,
                              AdmissionQueue::Dispatch::Deferred, R.CP,
                              R.Hold);
  Status S = F.wait();
  if (!S.ok())
    throwStatus(std::move(S));
}

Status Tensor::tryEvaluate(const Machine &M) {
  std::shared_ptr<CompiledPlan> CP;
  try {
    PreparedRun R = prepareRun(M, TraceMode::Off);
    CP = R.CP;
    ExecFuture F = R.CP->submit(R.Regions, R.Opts,
                                AdmissionQueue::Dispatch::Deferred, R.CP,
                                R.Hold);
    Status S = F.wait();
    // Execution failures are contained per-arena; only an explicitly
    // poisoned artifact is unusable, and it must not stay in the
    // process-wide cache where the next compile() would find it.
    if (!S.ok() && CP->poisoned()) {
      std::lock_guard<std::mutex> Lock(apiMutex());
      if (!MemoKey.empty())
        PlanCache::global().invalidate(MemoKey);
    }
    return S;
  } catch (...) {
    Status S = statusFromCurrentException();
    if (CP && CP->poisoned()) {
      std::lock_guard<std::mutex> Lock(apiMutex());
      if (!MemoKey.empty())
        PlanCache::global().invalidate(MemoKey);
    }
    return S;
  }
}

ExecFuture Tensor::evaluateAsync(const Machine &M) {
  PreparedRun R = prepareRun(M, TraceMode::Off);
  // The artifact shared_ptr rides in the future as its lifetime anchor: a
  // PlanCache eviction (or clear) between submit and wait cannot destroy
  // the artifact under the pending execution. The Hold rides in the
  // request itself, keeping the Regions alive and pinned until the
  // execution completes even if every future copy is dropped.
  return R.CP->submit(R.Regions, R.Opts,
                      AdmissionQueue::Dispatch::Background, R.CP, R.Hold);
}

Trace Tensor::evaluateWithTrace(const Machine &M) {
  PreparedRun R = prepareRun(M, TraceMode::Full);
  ExecFuture F = R.CP->submit(R.Regions, R.Opts,
                              AdmissionQueue::Dispatch::Deferred, R.CP,
                              R.Hold);
  Status S = F.wait();
  if (!S.ok())
    throwStatus(std::move(S));
  return F.trace();
}

Trace Tensor::evaluateUncached(const Machine &M) {
  CompiledPlan CP(lower(M));
  return runCompiled(CP, M, TraceMode::Full);
}

Trace Tensor::simulateOn(const Machine &M) { return compile(M)->trace(); }

Tensor &Tensor::lookupTensor(const TensorVar &V) { return lookup(V); }

std::mutex &Tensor::apiMu() { return apiMutex(); }

void Tensor::evaluateProgram(const std::vector<Tensor *> &Stmts,
                             const Machine &M) {
  Program P;
  for (Tensor *T : Stmts) {
    if (!T)
      reportFatalError("evaluateProgram: null tensor in statement list");
    P.add(*T);
  }
  P.evaluate(M);
}

double Tensor::at(const Point &P) const {
  if (!Reg)
    reportFatalError("tensor '" + Var.name() + "' has no data; call "
                     "evaluate() first");
  return Reg->at(P);
}
