//===- api/Tensor.cpp -----------------------------------------*- C++ -*-===//

#include "api/Tensor.h"

#include <map>
#include <mutex>

#include "lower/Lower.h"
#include "runtime/Executor.h"
#include "support/Error.h"

using namespace distal;

namespace {

/// Registry resolving TensorVars back to their owning api::Tensor, so that
/// evaluate() can find operand formats and data fills. Entries are removed
/// when tensors are destroyed.
std::map<TensorVar, Tensor *> &registry() {
  static std::map<TensorVar, Tensor *> R;
  return R;
}
std::mutex &registryMutex() {
  static std::mutex M;
  return M;
}

Tensor &lookup(const TensorVar &V) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  auto It = registry().find(V);
  if (It == registry().end())
    reportFatalError("tensor '" + V.name() +
                     "' is not backed by a live distal::Tensor");
  return *It->second;
}

} // namespace

TensorAccess::TensorAccess(Tensor &T, std::vector<IndexVar> Indices)
    : T(T), Indices(std::move(Indices)) {}

TensorAccess &TensorAccess::operator=(const Expr &Rhs) {
  T.defineComputation(Assignment(Access(T.var(), Indices), Rhs));
  return *this;
}

TensorAccess::operator Expr() const {
  return Expr(Access(T.var(), Indices));
}

TensorAccess::operator Access() const { return Access(T.var(), Indices); }

Tensor::Tensor(std::string Name, std::vector<Coord> Dims, Format Fmt)
    : Var(std::move(Name), std::move(Dims)), Fmt(std::move(Fmt)) {
  if (this->Fmt.order() != Var.order())
    reportFatalError("format order does not match tensor '" + Var.name() +
                     "'");
  std::lock_guard<std::mutex> Lock(registryMutex());
  registry()[Var] = this;
}

Tensor::~Tensor() {
  std::lock_guard<std::mutex> Lock(registryMutex());
  registry().erase(Var);
}

void Tensor::defineComputation(Assignment Stmt) {
  Sched = std::make_unique<Schedule>(std::move(Stmt));
}

Schedule &Tensor::schedule() {
  if (!Sched)
    reportFatalError("tensor '" + Var.name() +
                     "' has no computation to schedule");
  return *Sched;
}

void Tensor::fillRandom(uint64_t Seed) {
  fill([Seed, State = uint64_t(0)](const Point &) mutable {
    // Match Region::fillRandom's stream.
    if (State == 0)
      State = Seed * 2654435761u + 12345;
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((State >> 33) % 1000) / 999.0 - 0.5;
  });
}

void Tensor::fill(std::function<double(const Point &)> Fn) {
  PendingFill = std::move(Fn);
  if (Reg)
    Reg->fill(PendingFill);
}

Region &Tensor::materialize(const Machine &M) {
  if (!Reg) {
    Reg = std::make_unique<Region>(Var, Fmt, M);
    if (PendingFill)
      Reg->fill(PendingFill);
  }
  return *Reg;
}

Plan Tensor::compile(const Machine &M) {
  if (!Sched)
    reportFatalError("tensor '" + Var.name() + "' has no computation");
  std::map<TensorVar, Format> Formats;
  for (const TensorVar &T : Sched->nest().Stmt.tensors())
    Formats.emplace(T, lookup(T).format());
  return lower(Sched->nest(), M, std::move(Formats));
}

Trace Tensor::evaluate(const Machine &M) {
  Plan P = compile(M);
  std::map<TensorVar, Region *> Regions;
  for (const TensorVar &T : P.Nest.Stmt.tensors())
    Regions[T] = &lookup(T).materialize(M);
  Executor Exec(P);
  return Exec.run(Regions);
}

Trace Tensor::simulateOn(const Machine &M) {
  Plan P = compile(M);
  Executor Exec(P);
  return Exec.simulate();
}

double Tensor::at(const Point &P) const {
  if (!Reg)
    reportFatalError("tensor '" + Var.name() + "' has no data; call "
                     "evaluate() first");
  return Reg->at(P);
}
