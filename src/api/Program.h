//===- api/Program.h - User-facing statement-chain API ---------*- C++ -*-===//
///
/// \file
/// The program surface of the API: an ordered chain of scheduled tensor
/// statements evaluated as ONE linked artifact instead of one statement at
/// a time. Iterative workloads (power iteration, ALS sweeps, Tucker/CP
/// chains) are programs — each statement's output feeds later inputs — and
/// statement-at-a-time execution pays a full barrier, a writeback, and a
/// re-gather at every boundary. A Program compiles every member through
/// the PlanCache, links them by producer/consumer residency
/// (CompiledProgram), caches the linked artifact keyed by the
/// statement-fingerprint chain, and executes all statement tasks as a
/// single dependency graph:
///
/// \code
///   Tensor Y("Y", {n}, f), T("T", {n}, f), X("X", {n}, f);
///   T(i) = A(i, j) * X(j);      T.schedule()...;
///   Y(i) = A(i, j) * T(j);      Y.schedule()...;
///   Program P;
///   P.add(T).add(Y);
///   P.evaluate(m);              // bitwise == T.evaluate(m); Y.evaluate(m)
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DISTAL_API_PROGRAM_H
#define DISTAL_API_PROGRAM_H

#include <memory>
#include <vector>

#include "api/Tensor.h"
#include "runtime/CompiledProgram.h"

namespace distal {

/// An ordered chain of tensor statements compiled and executed as one
/// linked program. Holds raw pointers to the member tensors: they must
/// outlive every compile/evaluate call (the normal stack-scoped usage).
/// Not thread-safe to mutate concurrently; evaluate-family calls on a
/// built program are thread-safe against each other and against the
/// Tensor evaluate family (they share the same api-level serialization).
class Program {
public:
  /// Appends tensor \p T's defined computation as the next statement.
  /// Returns *this for chaining. The tensor must have a computation by
  /// the time compile()/evaluate() runs.
  Program &add(Tensor &T);

  /// Number of statements added.
  size_t size() const { return Stmts.size(); }

  /// Execute-time options applied by the evaluate family — same contract
  /// as Tensor::execOptions(): none participate in the cache key, results
  /// are bitwise-identical across all settings. ZeroCopyViews additionally
  /// gates the program-level residency overrides (off = the conservative
  /// per-statement reference path). Cancel carries the
  /// cancellation/deadline token: the program walk checks it at every node
  /// boundary (between statements' tasks), a trip is contained like any
  /// other failure, and a clean re-evaluate stays bitwise-identical.
  ExecOptions &execOptions() { return ExecOpts; }

  /// Compiles (or cache-hits) the linked program artifact for machine
  /// \p M: each member statement compiles through the PlanCache, then the
  /// chain links through the program-side cache keyed by the statement-
  /// fingerprint chain. The returned artifact co-owns its members, so
  /// later cache evictions never invalidate it. Throws DistalError on
  /// validation or lowering failure.
  std::shared_ptr<CompiledProgram> compile(const Machine &M);

  /// Non-throwing compile: failures come back as a Status.
  StatusOr<std::shared_ptr<CompiledProgram>> tryCompile(const Machine &M);

  /// Compiles (or cache-hits) and runs the whole chain on real data;
  /// pending fills of every member tensor are applied. Output bytes of
  /// every member tensor are bitwise-identical to evaluating the members
  /// one at a time, in order. Throws DistalError on failure.
  void evaluate(const Machine &M);

  /// Non-throwing evaluate: a failed execution is contained inside its
  /// program arena (CompiledProgram's failure contract) and the artifact
  /// stays reusable.
  Status tryEvaluate(const Machine &M);

  /// Asynchronous evaluate: dispatches the program execution to the
  /// process pool's detached lane and returns a future carrying the
  /// latched Status. The pending execution co-owns the artifact and the
  /// backing Regions (pinned), so the future may outlive this Program and
  /// its tensors. Concurrent submissions sharing *input* tensors are safe
  /// (inputs are only read); callers racing on a shared *output* tensor
  /// must serialize themselves. Thread-safe.
  ProgramFuture evaluateAsync(const Machine &M);

private:
  struct Prepared;
  Prepared prepare(const Machine &M);

  std::vector<Tensor *> Stmts;
  ExecOptions ExecOpts;
};

} // namespace distal

#endif // DISTAL_API_PROGRAM_H
