//===- api/Tensor.h - User-facing tensor API -------------------*- C++ -*-===//
///
/// \file
/// The user-facing API mirroring the paper's Fig. 2: declare tensors with
/// formats (distribution + memory), write tensor index notation with
/// overloaded operators, schedule the computation with the chained
/// scheduling language, then compile and evaluate on a machine:
///
/// \code
///   Machine m = Machine::grid({gx, gy}, ProcessorKind::GPU);
///   Format f({Dense, Dense}, TensorDistribution::parse("xy->xy"),
///            MemoryKind::GPUFrameBuffer);
///   Tensor A("A", {n, n}, f), B("B", {n, n}, f), C("C", {n, n}, f);
///   IndexVar i, j, k;
///   A(i, j) = B(i, k) * C(k, j);
///   A.schedule().distribute(...).communicate(...);
///   A.evaluate(m);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DISTAL_API_TENSOR_H
#define DISTAL_API_TENSOR_H

#include <memory>

#include "lower/Plan.h"
#include "runtime/CompiledPlan.h"
#include "runtime/Ledger.h"
#include "runtime/Region.h"
#include "schedule/Schedule.h"

namespace distal {

class Tensor;

/// Proxy returned by Tensor::operator(); assigning an expression to it
/// records the computation on the accessed tensor.
class TensorAccess {
public:
  /// Built by Tensor::operator(); not constructed directly by users.
  TensorAccess(Tensor &T, std::vector<IndexVar> Indices);

  /// Records `tensor(indices) = rhs` as the tensor's computation.
  TensorAccess &operator=(const Expr &Rhs);

  /// An access used on a right-hand side converts to the expression /
  /// access IR so `A(i, j) = B(i, k) * C(k, j)` reads naturally.
  operator Expr() const;   // NOLINT(google-explicit-constructor)
  operator Access() const; // NOLINT(google-explicit-constructor)

private:
  Tensor &T;
  std::vector<IndexVar> Indices;
};

/// A dense distributed tensor with a format and (once evaluated) data.
class Tensor {
public:
  /// Declares a dense tensor of shape \p Dims with format \p Fmt
  /// (distribution + memory kind). The name identifies it in plans,
  /// traces, and the PlanCache key.
  Tensor(std::string Name, std::vector<Coord> Dims, Format Fmt);
  ~Tensor();
  Tensor(const Tensor &) = delete;
  Tensor &operator=(const Tensor &) = delete;

  /// The IR-level variable this tensor declares.
  const TensorVar &var() const { return Var; }
  /// The declared format (distribution + memory kind).
  const Format &format() const { return Fmt; }

  /// Implicit conversion so tensors can be passed to scheduling commands
  /// (`.communicate(A, jo)`, `.communicate({B, C}, ko)`) exactly as in the
  /// paper's Fig. 2.
  operator const TensorVar &() const { return Var; } // NOLINT

  /// Access for building tensor index notation (up to four indices; use
  /// the vector overload beyond that).
  TensorAccess operator()() { return TensorAccess(*this, {}); }
  TensorAccess operator()(const IndexVar &I) { return TensorAccess(*this, {I}); }
  TensorAccess operator()(const IndexVar &I, const IndexVar &J) {
    return TensorAccess(*this, {I, J});
  }
  TensorAccess operator()(const IndexVar &I, const IndexVar &J,
                          const IndexVar &K) {
    return TensorAccess(*this, {I, J, K});
  }
  TensorAccess operator()(const IndexVar &I, const IndexVar &J,
                          const IndexVar &K, const IndexVar &L) {
    return TensorAccess(*this, {I, J, K, L});
  }
  TensorAccess operator()(std::vector<IndexVar> Indices) {
    return TensorAccess(*this, std::move(Indices));
  }

  /// Records this tensor's defining computation (called by TensorAccess).
  void defineComputation(Assignment Stmt);
  bool hasComputation() const { return Sched != nullptr; }

  /// The schedule of this tensor's computation (Fig. 2 line 23).
  Schedule &schedule();

  /// Pending input data (applied when regions are materialised).
  void fillRandom(uint64_t Seed);
  void fill(std::function<double(const Point &)> Fn);

  /// Lowers the scheduled computation to a Plan for machine \p M (the
  /// pre-compile program; see compile() for the executable artifact).
  Plan lower(const Machine &M);

  /// Compiles the scheduled computation for machine \p M into a persistent
  /// CompiledPlan artifact, consulting the process-wide PlanCache: the
  /// first call per (statement, schedule, formats, machine) pays the full
  /// analysis, later calls return the cached artifact. The artifact (and
  /// its reusable instance buffers) is shared between the cache and the
  /// caller. Steady-state calls also skip re-lowering and re-fingerprinting:
  /// the cache key is memoized per machine and dropped whenever the
  /// computation is redefined or schedule() is accessed (mutating a held
  /// Schedule reference without going through schedule() is not tracked).
  /// PlanCache invalidation is still honoured — the memoized key is only a
  /// shortcut to the lookup, never to the artifact.
  std::shared_ptr<CompiledPlan> compile(const Machine &M);

  /// Non-throwing compile: a lowering or validation failure comes back as
  /// a Status instead of a DistalError.
  StatusOr<std::shared_ptr<CompiledPlan>> tryCompile(const Machine &M);

  /// Compiles (or cache-hits) and runs on real data; operand tensors'
  /// fills are applied. The steady-state path: repeated calls reuse the
  /// cached artifact, its per-execution arenas, and this tensor's backing
  /// Region, and skip trace accounting entirely (TraceMode::Off). Routed
  /// through the artifact's admission queue, so concurrent evaluations of
  /// one tensor on one machine coalesce onto a single pass (when neither
  /// has started yet) or serialize behind each other — they never race on
  /// the shared output region — while evaluations of different tensors run
  /// concurrently, each in its own arena. Evaluating on a different
  /// machine than an in-flight evaluation of this tensor (or of a tensor
  /// reading it) is safe but blocks until the in-flight executions over
  /// the old Region drain before the Region is rebuilt. Thread-safe
  /// against other evaluate-family calls; the caller must hold input data
  /// immutable while any evaluation is in flight. Throws DistalError on
  /// failure; tryEvaluate is the non-throwing form.
  void evaluate(const Machine &M);

  /// Non-throwing evaluate. A failed execution is contained inside its
  /// arena (CompiledPlan's failure contract) — the artifact stays usable;
  /// if the artifact was explicitly poisoned, its PlanCache entry is
  /// evicted here so the next compile()/evaluate() recompiles instead of
  /// serving the dead artifact. Thread-safe like evaluate().
  Status tryEvaluate(const Machine &M);

  /// Asynchronous evaluate: admits the execution to the cached artifact's
  /// admission queue, dispatches it to the process pool's background lane,
  /// and returns a future immediately. The future carries the Status
  /// (never throws) and keeps the artifact alive even across a PlanCache
  /// eviction; the admitted request additionally holds the backing Regions
  /// (shared ownership) until the execution completes, so the future may
  /// safely outlive this tensor and its operands — even a later machine
  /// change that rebuilds their Regions waits for the pending execution to
  /// drain rather than freeing storage under it. Identical concurrent
  /// submissions coalesce (or serialize; see evaluate()); a full admission
  /// queue resolves the future with ResourceExhausted. Compilation and
  /// region materialisation still happen synchronously in this call (and
  /// may throw, as in evaluate()). The returned future supports bounded
  /// waits (ExecFuture::waitFor) and cancellation (ExecFuture::cancel);
  /// a deadline set via execOptions().Cancel resolves the future
  /// DeadlineExceeded — without executing if it expires while the request
  /// is still queued. Under memory pressure (Executor::setMemoryBudget /
  /// DISTAL_MEM_BUDGET) the admission may be degraded to Pipeline::Off
  /// (output bytes unaffected; noted on the Status), shed with
  /// ResourceExhausted carrying a retry-after hint, or refused
  /// FailedPrecondition by the artifact's circuit breaker — see
  /// support/ResourceGovernor.h. Thread-safe like evaluate().
  ExecFuture evaluateAsync(const Machine &M);

  /// Like evaluate(), returning the execution trace (precomputed at
  /// compile time; this copies the cached skeleton). Thread-safe like
  /// evaluate().
  Trace evaluateWithTrace(const Machine &M);

  /// Escape hatch: compiles a fresh artifact, bypassing the PlanCache in
  /// both directions (no lookup, no insertion). Results are
  /// bitwise-identical to the cached path.
  Trace evaluateUncached(const Machine &M);

  /// The trace of the compiled plan without touching data (for cost
  /// studies). Uses the same cached artifact as evaluate().
  Trace simulateOn(const Machine &M);

  /// Evaluates an ordered chain of statements as one linked program (see
  /// api/Program.h): each tensor in \p Stmts contributes its defined
  /// computation, in order. Equivalent to (and bitwise-identical with)
  /// calling evaluate(M) on each tensor in sequence, but compiled into one
  /// cached CompiledProgram whose tasks run as a single dependency graph —
  /// cross-statement barriers, interior gathers, and interior writebacks
  /// are elided where the residency analysis allows. Throws DistalError on
  /// failure.
  static void evaluateProgram(const std::vector<Tensor *> &Stmts,
                              const Machine &M);

  /// Execute-time options applied by evaluate()/evaluateWithTrace()/
  /// evaluateUncached(): threading, the task/leaf split, the pipeline
  /// mode (Pipeline::DoubleBuffer by default — the next step's gathers
  /// prefetch behind the current leaf), zero-copy alias views (on by
  /// default — home-resident gathers bind leaves directly to Region
  /// storage), and the cancellation/deadline token (Cancel; see
  /// CancelToken — a tripped token stops the evaluation at its next
  /// cancellation point with Cancelled/DeadlineExceeded, contained like
  /// any other failure, and a clean re-evaluate stays bitwise-identical).
  /// None of these participate in the PlanCache key, so flipping them
  /// costs no recompile and results stay bitwise-identical. The trace
  /// mode field is overridden per call.
  ExecOptions &execOptions() { return ExecOpts; }

  /// The PlanCache key evaluate()/compile() use for machine \p M (for
  /// explicit invalidation via PlanCache::global().invalidate).
  std::string planKey(const Machine &M);

  /// Element access after evaluate().
  double at(const Point &P) const;
  /// The region backing this tensor after evaluate(), if any. Owned by the
  /// tensor (shared with in-flight executions) and reused across
  /// evaluations on the same machine; evaluating on a different machine
  /// rebuilds it after in-flight executions drain (re-applying any pending
  /// fill).
  Region *region() const { return Reg.get(); }

private:
  /// Program builds on the same compile-memo, registry, and
  /// materialisation internals the evaluate family uses.
  friend class Program;

  /// Resolves \p V back to its live api::Tensor (fatal when none exists).
  static Tensor &lookupTensor(const TensorVar &V);
  /// The process-wide mutex serializing the evaluate-family front half
  /// (compile memo + region materialisation). Never held during execution.
  static std::mutex &apiMu();

  /// Ensures the backing Region exists for machine \p M and returns the
  /// owning pointer (shared so in-flight executions can anchor it). A
  /// machine change waits for executions pinning the old Region to drain,
  /// then rebuilds. Caller holds the api mutex.
  const std::shared_ptr<Region> &materialize(const Machine &M,
                                             bool PreserveData = true);
  Trace runCompiled(CompiledPlan &CP, const Machine &M, TraceMode Mode);
  /// compile() body; caller holds the api mutex (guards the memo fields).
  std::shared_ptr<CompiledPlan> compileLocked(const Machine &M);

  /// One admission-ready request: the cached artifact, the materialised
  /// region map over this tensor and its operands, the snapshotted
  /// options, and the Hold — shared ownership of (and execution pins on)
  /// every Region in the map, passed to the admission queue as the
  /// request's RunAnchor so the storage outlives the execution even if a
  /// tensor dies or re-materialises meanwhile. Built under the api mutex
  /// (compile-memo writes and Region materialisation are the shared
  /// mutable state); the execution itself then runs outside it.
  struct PreparedRun {
    std::shared_ptr<CompiledPlan> CP;
    std::map<TensorVar, Region *> Regions;
    ExecOptions Opts;
    std::shared_ptr<void> Hold;
  };
  PreparedRun prepareRun(const Machine &M, TraceMode Mode);

  TensorVar Var;
  Format Fmt;
  std::unique_ptr<Schedule> Sched;
  /// Shared, not unique: in-flight executions co-own the Region through
  /// their request's Hold, so a machine-change rebuild (or this tensor's
  /// destruction) can never free storage an execution still touches.
  std::shared_ptr<Region> Reg;
  std::function<double(const Point &)> PendingFill;
  ExecOptions ExecOpts;
  /// Steady-state shortcut past lowering + fingerprinting: the PlanCache
  /// key last computed, valid for MemoMachine while the schedule is
  /// untouched (cleared by defineComputation and schedule()).
  std::string MemoMachine, MemoKey;
};

} // namespace distal

#endif // DISTAL_API_TENSOR_H
