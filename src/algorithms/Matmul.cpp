//===- algorithms/Matmul.cpp ----------------------------------*- C++ -*-===//

#include "algorithms/Matmul.h"

#include "baselines/Cosma.h"
#include "lower/Lower.h"
#include "support/Error.h"
#include "support/Util.h"

using namespace distal;
using namespace distal::algorithms;

std::string distal::algorithms::toString(MatmulAlgo A) {
  switch (A) {
  case MatmulAlgo::Summa:
    return "summa";
  case MatmulAlgo::Cannon:
    return "cannon";
  case MatmulAlgo::Pumma:
    return "pumma";
  case MatmulAlgo::Johnson:
    return "johnson";
  case MatmulAlgo::Solomonik:
    return "solomonik";
  case MatmulAlgo::Cosma:
    return "cosma";
  }
  unreachable("unknown matmul algorithm");
}

const std::vector<MatmulAlgo> &distal::algorithms::allMatmulAlgos() {
  static const std::vector<MatmulAlgo> All = {
      MatmulAlgo::Cannon,  MatmulAlgo::Summa,     MatmulAlgo::Pumma,
      MatmulAlgo::Johnson, MatmulAlgo::Solomonik, MatmulAlgo::Cosma};
  return All;
}

std::pair<int, int> distal::algorithms::bestRect2D(int64_t P) {
  int Gx = static_cast<int>(sqrtFloor(P));
  while (P % Gx != 0)
    --Gx;
  int Gy = static_cast<int>(P / Gx);
  if (Gx < Gy)
    std::swap(Gx, Gy);
  return {Gx, Gy};
}

std::array<int, 3> distal::algorithms::bestCuboid3D(int64_t P) {
  std::array<int, 3> Best = {static_cast<int>(P), 1, 1};
  int64_t BestSpread = P;
  for (int A = 1; static_cast<int64_t>(A) * A * A <= P; ++A) {
    if (P % A != 0)
      continue;
    auto [B, C] = bestRect2D(P / A);
    int64_t Spread = std::max({A, B, C}) - std::min({A, B, C});
    if (Spread < BestSpread) {
      BestSpread = Spread;
      Best = {B, C, A};
    }
  }
  return Best;
}

int distal::algorithms::solomonikReplication(int64_t Procs) {
  int Best = 1;
  for (int C = 1; static_cast<int64_t>(C) * C * C <= Procs; ++C) {
    if (Procs % C != 0)
      continue;
    int64_t Sq = Procs / C;
    if (!isPerfectSquare(Sq))
      continue;
    int G = static_cast<int>(sqrtFloor(Sq));
    if (G % C != 0)
      continue;
    Best = C;
  }
  return Best;
}

Machine distal::algorithms::matmulMachine(MatmulAlgo Algo,
                                          const MatmulOptions &Opts) {
  int64_t P = Opts.Procs;
  switch (Algo) {
  case MatmulAlgo::Summa:
  case MatmulAlgo::Cannon:
  case MatmulAlgo::Pumma: {
    auto [Gx, Gy] = bestRect2D(P);
    return Machine::gridWithNodeSize({Gx, Gy}, Opts.Proc, Opts.ProcsPerNode);
  }
  case MatmulAlgo::Johnson: {
    // The closest cuboid factorisation: perfect cubes at cube counts, and
    // flattened grids (the paper's non-cube degradation) elsewhere.
    std::array<int, 3> G = bestCuboid3D(P);
    int Ppn = P % Opts.ProcsPerNode == 0 ? Opts.ProcsPerNode : 1;
    return Machine::gridWithNodeSize({G[0], G[1], G[2]}, Opts.Proc, Ppn);
  }
  case MatmulAlgo::Solomonik: {
    int C = Opts.ReplicationC > 0 ? Opts.ReplicationC
                                  : solomonikReplication(P);
    if (P % C != 0)
      C = 1;
    // 2.5D uses extra memory "when possible" (§7.1.2): shrink the
    // replication factor until the replicated tiles fit the budget.
    auto fits = [&](int Cand) {
      auto [Gx, Gy] = bestRect2D(P / Cand);
      double Tile = static_cast<double>(ceilDiv(Opts.N, Gx)) *
                    static_cast<double>(ceilDiv(Opts.N, Gy));
      return 6 * Tile <= Opts.MemLimitElems;
    };
    while (C > 1 && (P % C != 0 || !fits(C)))
      --C;
    auto [Gx, Gy] = bestRect2D(P / C);
    int Ppn = P % Opts.ProcsPerNode == 0 ? Opts.ProcsPerNode : 1;
    return Machine::gridWithNodeSize({Gx, Gy, C}, Opts.Proc, Ppn);
  }
  case MatmulAlgo::Cosma: {
    cosma::Decomposition D =
        cosma::optimize(P, Opts.N, Opts.N, Opts.N, Opts.MemLimitElems);
    return Machine::gridWithNodeSize({D.Gm, D.Gn, D.Gk}, Opts.Proc,
                                     Opts.ProcsPerNode);
  }
  }
  unreachable("unknown matmul algorithm");
}

MatmulProblem distal::algorithms::buildMatmul(MatmulAlgo Algo,
                                              const MatmulOptions &Opts) {
  DISTAL_ASSERT(Opts.N > 0, "matrix dimension must be positive");
  Machine M = matmulMachine(Algo, Opts);
  std::vector<int> Dims = M.flatDims();

  MatmulProblem Prob;
  Prob.A = TensorVar("A", {Opts.N, Opts.N});
  Prob.B = TensorVar("B", {Opts.N, Opts.N});
  Prob.C = TensorVar("C", {Opts.N, Opts.N});
  IndexVar I("i"), J("j"), K("k");
  IndexVar Io("io"), Ii("ii"), Jo("jo"), Ji("ji"), Ko("ko"), Ki("ki");
  Prob.Stmt = Assignment(Access(Prob.A, {I, J}),
                         Access(Prob.B, {I, K}) * Access(Prob.C, {K, J}));

  auto Fmt = [&](const std::string &Spec) {
    return Format({ModeKind::Dense, ModeKind::Dense},
                  TensorDistribution::parse(Spec), Opts.Memory);
  };
  std::map<TensorVar, Format> Formats;
  Schedule S(Prob.Stmt);

  switch (Algo) {
  case MatmulAlgo::Summa: {
    // Fig. 9 row 3: tiles + chunked broadcasts along k.
    Formats = {{Prob.A, Fmt("xy->xy")},
               {Prob.B, Fmt("xy->xy")},
               {Prob.C, Fmt("xy->xy")}};
    Coord Chunk = Opts.ChunkSize > 0 ? Opts.ChunkSize
                                     : std::max<Coord>(1, Opts.N / Dims[0]);
    S.distribute({I, J}, {Io, Jo}, {Ii, Ji}, std::vector<int>{Dims[0],
                                                              Dims[1]})
        .split(K, Ko, Ki, Chunk)
        .reorder({Io, Jo, Ko, Ii, Ji, Ki})
        .communicate(Prob.A, Jo)
        .communicate({Prob.B, Prob.C}, Ko)
        .substitute({Ii, Ji, Ki}, LeafKernel::GeMM);
    break;
  }
  case MatmulAlgo::Cannon: {
    // Fig. 9 row 1: systolic shifts via rotate over both grid coordinates.
    IndexVar Kos("kos");
    Formats = {{Prob.A, Fmt("xy->xy")},
               {Prob.B, Fmt("xy->xy")},
               {Prob.C, Fmt("xy->xy")}};
    S.distribute({I, J}, {Io, Jo}, {Ii, Ji}, std::vector<int>{Dims[0],
                                                              Dims[1]})
        .divide(K, Ko, Ki, Dims[0])
        .reorder({Io, Jo, Ko, Ii, Ji, Ki})
        .rotate(Ko, {Io, Jo}, Kos)
        .communicate(Prob.A, Jo)
        .communicate({Prob.B, Prob.C}, Kos)
        .substitute({Ii, Ji, Ki}, LeafKernel::GeMM);
    break;
  }
  case MatmulAlgo::Pumma: {
    // Fig. 9 row 2: rotate over io only (broadcast one way, shift the
    // other).
    IndexVar Kos("kos");
    Formats = {{Prob.A, Fmt("xy->xy")},
               {Prob.B, Fmt("xy->xy")},
               {Prob.C, Fmt("xy->xy")}};
    S.distribute({I, J}, {Io, Jo}, {Ii, Ji}, std::vector<int>{Dims[0],
                                                              Dims[1]})
        .divide(K, Ko, Ki, Dims[0])
        .reorder({Io, Jo, Ko, Ii, Ji, Ki})
        .rotate(Ko, {Io}, Kos)
        .communicate(Prob.A, Jo)
        .communicate({Prob.B, Prob.C}, Kos)
        .substitute({Ii, Ji, Ki}, LeafKernel::GeMM);
    break;
  }
  case MatmulAlgo::Johnson: {
    // Fig. 9 row 4: tiles fixed to faces of the processor cube; one-shot
    // broadcasts and a reduction of A over the k dimension of the cube.
    Formats = {{Prob.A, Fmt("xy->xy0")},
               {Prob.B, Fmt("xy->x0y")},  // B(i,k) on the j = 0 face.
               {Prob.C, Fmt("xy->0yx")}}; // C(k,j) on the i = 0 face.
    S.distribute({I, J, K}, {Io, Jo, Ko}, {Ii, Ji, Ki},
                 std::vector<int>{Dims[0], Dims[1], Dims[2]})
        .communicate({Prob.A, Prob.B, Prob.C}, Ko)
        .substitute({Ii, Ji, Ki}, LeafKernel::GeMM);
    break;
  }
  case MatmulAlgo::Solomonik: {
    // Fig. 9 row 5: each slice of the cube runs Cannon's algorithm over
    // sqrt(p/c^3) steps; partial results reduce over the replication dim.
    IndexVar Kio("kio"), Kii("kii"), Kios("kios");
    Formats = {{Prob.A, Fmt("xy->xy0")},
               {Prob.B, Fmt("xy->xy0")},
               {Prob.C, Fmt("xy->xy0")}};
    int C = Dims[2];
    int Steps = std::max(1, Dims[0] / C);
    S.distribute({I, J, K}, {Io, Jo, Ko}, {Ii, Ji, Ki},
                 std::vector<int>{Dims[0], Dims[1], Dims[2]})
        .divide(Ki, Kio, Kii, Steps)
        .reorder({Kio, Ii, Ji, Kii})
        .rotate(Kio, {Io, Jo}, Kios)
        .communicate(Prob.A, Ko)
        .communicate({Prob.B, Prob.C}, Kios)
        .substitute({Ii, Ji, Kii}, LeafKernel::GeMM);
    break;
  }
  case MatmulAlgo::Cosma: {
    // Fig. 9 row 6: optimizer-chosen grid; the schedule induces the data
    // distribution (inputs laid out to match their readers).
    cosma::Decomposition D =
        cosma::optimize(Opts.Procs, Opts.N, Opts.N, Opts.N,
                        Opts.MemLimitElems);
    IndexVar Kio("kio"), Kii("kii");
    Formats = {{Prob.A, Fmt("xy->xy0")},
               {Prob.B, Fmt("xy->x*y")},  // B(i,k): replicated over gn.
               {Prob.C, Fmt("xy->*yx")}}; // C(k,j): replicated over gm.
    S.distribute({I, J, K}, {Io, Jo, Ko}, {Ii, Ji, Ki},
                 std::vector<int>{D.Gm, D.Gn, D.Gk})
        .divide(Ki, Kio, Kii, D.SeqSteps)
        .reorder({Kio, Ii, Ji, Kii})
        .communicate(Prob.A, Ko)
        .communicate({Prob.B, Prob.C}, Kio)
        .substitute({Ii, Ji, Kii}, LeafKernel::GeMM);
    break;
  }
  }

  Prob.P = lower(S.takeNest(), M, std::move(Formats));
  return Prob;
}
