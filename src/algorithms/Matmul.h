//===- algorithms/Matmul.h - Fig. 9 matmul algorithm catalogue -*- C++ -*-===//
///
/// \file
/// The distributed matrix-multiplication case studies of paper §4: each of
/// Cannon's, PUMMA, SUMMA, Johnson's, Solomonik's 2.5D, and COSMA expressed
/// as a target machine organisation, initial data distributions, and a
/// schedule of A(i,j) = B(i,k) * C(k,j) — exactly the Fig. 9 table. The
/// builders return ready-to-execute Plans plus the tensor handles.
///
//===----------------------------------------------------------------------===//

#ifndef DISTAL_ALGORITHMS_MATMUL_H
#define DISTAL_ALGORITHMS_MATMUL_H

#include <array>

#include "lower/Plan.h"

namespace distal {
namespace algorithms {

enum class MatmulAlgo { Summa, Cannon, Pumma, Johnson, Solomonik, Cosma };

std::string toString(MatmulAlgo A);
const std::vector<MatmulAlgo> &allMatmulAlgos();

/// A built matmul problem: the plan plus tensor handles (for creating
/// regions and checking results).
struct MatmulProblem {
  Plan P;
  TensorVar A, B, C;
  Assignment Stmt;
};

/// Options controlling machine organisation and algorithm parameters.
struct MatmulOptions {
  Coord N = 0;              ///< Square matrix dimension.
  int64_t Procs = 1;        ///< Total abstract processors.
  int ProcsPerNode = 1;     ///< Node grouping for link classification.
  ProcessorKind Proc = ProcessorKind::CPUSocket;
  MemoryKind Memory = MemoryKind::SystemMem;
  Coord ChunkSize = 0;      ///< SUMMA k-chunk (0: N/gx).
  int ReplicationC = 0;     ///< 2.5D replication factor (0: auto).
  double MemLimitElems = 1e18; ///< COSMA optimizer memory budget.
};

/// The machine organisation Fig. 9 prescribes for \p Algo at this
/// processor count (2-d grids for the 2D family, cubes for Johnson,
/// (sqrt(p/c), sqrt(p/c), c) for 2.5D, optimizer-chosen for COSMA).
Machine matmulMachine(MatmulAlgo Algo, const MatmulOptions &Opts);

/// Builds the Fig. 9 plan for \p Algo.
MatmulProblem buildMatmul(MatmulAlgo Algo, const MatmulOptions &Opts);

/// Largest c such that the 2.5D machine (sqrt(p/c), sqrt(p/c), c) exists
/// with the grid divisible by c (1 when none).
int solomonikReplication(int64_t Procs);

/// The factor pair (gx, gy) of \p P with gx*gy == P closest to square,
/// gx >= gy.
std::pair<int, int> bestRect2D(int64_t P);

/// The factor triple of \p P closest to a cube. Johnson's algorithm runs
/// on the cuboid; the paper's "degradation on processor grids that aren't
/// perfect cubes" appears as the extra communication of flattened cuboids.
std::array<int, 3> bestCuboid3D(int64_t P);

} // namespace algorithms
} // namespace distal

#endif // DISTAL_ALGORITHMS_MATMUL_H
