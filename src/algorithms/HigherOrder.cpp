//===- algorithms/HigherOrder.cpp -----------------------------*- C++ -*-===//

#include "algorithms/HigherOrder.h"

#include "algorithms/Matmul.h"
#include "lower/Lower.h"
#include "support/Error.h"
#include "support/Util.h"

using namespace distal;
using namespace distal::algorithms;

std::string distal::algorithms::toString(HigherOrderKernel K) {
  switch (K) {
  case HigherOrderKernel::TTV:
    return "ttv";
  case HigherOrderKernel::Innerprod:
    return "innerprod";
  case HigherOrderKernel::TTM:
    return "ttm";
  case HigherOrderKernel::MTTKRP:
    return "mttkrp";
  }
  unreachable("unknown higher-order kernel");
}

bool distal::algorithms::isBandwidthBound(HigherOrderKernel K) {
  return K == HigherOrderKernel::TTV || K == HigherOrderKernel::Innerprod;
}

HigherOrderProblem
distal::algorithms::buildHigherOrder(HigherOrderKernel K,
                                     const HigherOrderOptions &Opts) {
  DISTAL_ASSERT(Opts.Dim > 0, "tensor dimension must be positive");
  Coord D = Opts.Dim, R = Opts.Rank;
  int64_t P = Opts.Procs;
  IndexVar I("i"), J("j"), Kv("k"), L("l");
  IndexVar Io("io"), Ii("ii"), Jo("jo"), Ji("ji");

  HigherOrderProblem Prob;
  auto Fmt = [&](int Order, const std::string &Spec) {
    return Format(std::vector<ModeKind>(Order, ModeKind::Dense),
                  TensorDistribution::parse(Spec), Opts.Memory);
  };

  switch (K) {
  case HigherOrderKernel::TTV: {
    // Element-wise along the distributed i dimension: no communication.
    Machine M = Machine::gridWithNodeSize({static_cast<int>(P)}, Opts.Proc,
                                          Opts.ProcsPerNode);
    TensorVar A("A", {D, D}), B("B", {D, D, D}), C("c", {D});
    Prob.Stmt = Assignment(Access(A, {I, J}),
                           Access(B, {I, J, Kv}) * Access(C, {Kv}));
    Schedule S(Prob.Stmt);
    S.distribute({I}, {Io}, {Ii}, std::vector<int>{static_cast<int>(P)})
        .communicate({A, B, C}, Io)
        .parallelize(Ii);
    Prob.P = lower(S.takeNest(), M,
                   {{A, Fmt(2, "xy->x")},
                    {B, Fmt(3, "xyz->x")},
                    {C, Fmt(1, "x->*")}});
    Prob.Tensors = {A, B, C};
    break;
  }
  case HigherOrderKernel::Innerprod: {
    // Node-local reduction followed by a global tree reduction (§7.2.2).
    Machine M = Machine::gridWithNodeSize({static_cast<int>(P)}, Opts.Proc,
                                          Opts.ProcsPerNode);
    TensorVar A("a", {}), B("B", {D, D, D}), C("C", {D, D, D});
    Prob.Stmt = Assignment(Access(A, {}),
                           Access(B, {I, J, Kv}) * Access(C, {I, J, Kv}));
    Schedule S(Prob.Stmt);
    S.distribute({I}, {Io}, {Ii}, std::vector<int>{static_cast<int>(P)})
        .communicate({A, B, C}, Io)
        .parallelize(Ii);
    Prob.P = lower(S.takeNest(), M,
                   {{A, Fmt(0, "->0")},
                    {B, Fmt(3, "xyz->x")},
                    {C, Fmt(3, "xyz->x")}});
    Prob.Tensors = {A, B, C};
    break;
  }
  case HigherOrderKernel::TTM: {
    // distribute(i) turns TTM into independent local GEMMs: the paper's
    // no-inter-node-communication schedule (§7.2.2).
    Machine M = Machine::gridWithNodeSize({static_cast<int>(P)}, Opts.Proc,
                                          Opts.ProcsPerNode);
    TensorVar A("A", {D, D, R}), B("B", {D, D, D}), C("C", {D, R});
    Prob.Stmt = Assignment(Access(A, {I, J, L}),
                           Access(B, {I, J, Kv}) * Access(C, {Kv, L}));
    Schedule S(Prob.Stmt);
    S.distribute({I}, {Io}, {Ii}, std::vector<int>{static_cast<int>(P)})
        .communicate({A, B, C}, Io)
        .parallelize(Ii);
    Prob.P = lower(S.takeNest(), M,
                   {{A, Fmt(3, "xyz->x")},
                    {B, Fmt(3, "xyz->x")},
                    {C, Fmt(2, "xy->*")}});
    Prob.Tensors = {A, B, C};
    break;
  }
  case HigherOrderKernel::MTTKRP: {
    // Ballard et al.: B stays in place on a 2-d grid; partial A results
    // reduce over the grid's j dimension into the jo = 0 column.
    auto [Gx, Gy] = bestRect2D(P);
    Machine M =
        Machine::gridWithNodeSize({Gx, Gy}, Opts.Proc, Opts.ProcsPerNode);
    TensorVar A("A", {D, R}), B("B", {D, D, D}), C("C", {D, R}),
        Dm("D", {D, R});
    Prob.Stmt = Assignment(Access(A, {I, L}),
                           Access(B, {I, J, Kv}) * Access(C, {J, L}) *
                               Access(Dm, {Kv, L}));
    Schedule S(Prob.Stmt);
    S.distribute({I, J}, {Io, Jo}, {Ii, Ji}, std::vector<int>{Gx, Gy})
        .communicate({A, B, C, Dm}, Jo)
        .parallelize(Ii);
    Prob.P = lower(S.takeNest(), M,
                   {{A, Fmt(2, "xy->x0")},
                    {B, Fmt(3, "xyz->xy")},
                    {C, Fmt(2, "xy->*x")},
                    {Dm, Fmt(2, "xy->**")}});
    Prob.Tensors = {A, B, C, Dm};
    break;
  }
  }
  return Prob;
}
