//===- algorithms/HigherOrder.h - Higher-order tensor kernels --*- C++ -*-===//
///
/// \file
/// The higher-order tensor kernels of the paper's evaluation (§7.2) with
/// the schedules the authors describe:
///
///  * TTV        A(i,j)   = B(i,j,k) · c(k)          — element-wise, no
///                inter-node communication;
///  * Innerprod  a        = B(i,j,k) · C(i,j,k)      — local reduce + global
///                tree reduce;
///  * TTM        A(i,j,l) = B(i,j,k) · C(k,l)        — parallel local GEMMs,
///                no inter-node communication;
///  * MTTKRP     A(i,l)   = B(i,j,k) · C(j,l) · D(k,l) — Ballard et al.:
///                the 3-tensor stays in place, partials reduce into A.
///
//===----------------------------------------------------------------------===//

#ifndef DISTAL_ALGORITHMS_HIGHERORDER_H
#define DISTAL_ALGORITHMS_HIGHERORDER_H

#include "lower/Plan.h"

namespace distal {
namespace algorithms {

enum class HigherOrderKernel { TTV, Innerprod, TTM, MTTKRP };

std::string toString(HigherOrderKernel K);

/// True for kernels whose throughput the paper reports in GB/s.
bool isBandwidthBound(HigherOrderKernel K);

struct HigherOrderOptions {
  Coord Dim = 0;        ///< Cubic 3-tensor side I = J = K.
  Coord Rank = 32;      ///< Factor-matrix columns (TTM l, MTTKRP l).
  int64_t Procs = 1;
  int ProcsPerNode = 1;
  ProcessorKind Proc = ProcessorKind::CPUSocket;
  MemoryKind Memory = MemoryKind::SystemMem;
};

struct HigherOrderProblem {
  Plan P;
  std::vector<TensorVar> Tensors; ///< Output first.
  Assignment Stmt;
};

/// Builds the paper's schedule for kernel \p K.
HigherOrderProblem buildHigherOrder(HigherOrderKernel K,
                                    const HigherOrderOptions &Opts);

} // namespace algorithms
} // namespace distal

#endif // DISTAL_ALGORITHMS_HIGHERORDER_H
