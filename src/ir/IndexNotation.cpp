//===- ir/IndexNotation.cpp -----------------------------------*- C++ -*-===//

#include "ir/IndexNotation.h"

#include <atomic>
#include <set>
#include <sstream>

#include "support/Error.h"

using namespace distal;

static int nextIndexVarId() {
  static std::atomic<int> Counter{0};
  return Counter++;
}

IndexVar::IndexVar() : IndexVar("v" + std::to_string(nextIndexVarId())) {}

IndexVar::IndexVar(std::string Name)
    : Content(std::make_shared<Payload>(
          Payload{std::move(Name), nextIndexVarId()})) {}

TensorVar::TensorVar(std::string Name, std::vector<Coord> Shape)
    : Content(std::make_shared<Payload>(
          Payload{std::move(Name), std::move(Shape)})) {
  for (Coord D : Content->Shape)
    DISTAL_ASSERT(D > 0, "tensor dimensions must be positive");
}

const std::string &TensorVar::name() const {
  DISTAL_ASSERT(Content, "use of undefined TensorVar");
  return Content->Name;
}

const std::vector<Coord> &TensorVar::shape() const {
  DISTAL_ASSERT(Content, "use of undefined TensorVar");
  return Content->Shape;
}

struct distal::ExprNode {
  ExprKind Kind;
  Access Acc;        // Kind == Access
  double Literal = 0; // Kind == Literal
  Expr Lhs, Rhs;     // Kind == Add / Mul
};

Access::Access(TensorVar Tensor, std::vector<IndexVar> Indices)
    : Tensor(std::move(Tensor)), Indices(std::move(Indices)) {
  DISTAL_ASSERT(static_cast<int>(this->Indices.size()) == this->Tensor.order(),
                "access arity must match tensor order");
}

Access::operator Expr() const { return Expr(*this); }

std::string Access::str() const {
  std::ostringstream OS;
  OS << Tensor.name();
  if (!Indices.empty()) {
    OS << "(";
    for (size_t I = 0; I < Indices.size(); ++I) {
      if (I != 0)
        OS << ",";
      OS << Indices[I].name();
    }
    OS << ")";
  }
  return OS.str();
}

Expr::Expr(double Literal) {
  auto N = std::make_shared<ExprNode>();
  N->Kind = ExprKind::Literal;
  N->Literal = Literal;
  Node = std::move(N);
}

Expr::Expr(const Access &A) {
  DISTAL_ASSERT(A.tensor().defined(), "access to undefined tensor");
  auto N = std::make_shared<ExprNode>();
  N->Kind = ExprKind::Access;
  N->Acc = A;
  Node = std::move(N);
}

ExprKind Expr::kind() const {
  DISTAL_ASSERT(Node, "use of undefined Expr");
  return Node->Kind;
}

const Access &Expr::access() const {
  DISTAL_ASSERT(kind() == ExprKind::Access, "expr is not an access");
  return Node->Acc;
}

double Expr::literal() const {
  DISTAL_ASSERT(kind() == ExprKind::Literal, "expr is not a literal");
  return Node->Literal;
}

const Expr &Expr::lhs() const {
  DISTAL_ASSERT(kind() == ExprKind::Add || kind() == ExprKind::Mul,
                "expr has no operands");
  return Node->Lhs;
}

const Expr &Expr::rhs() const {
  DISTAL_ASSERT(kind() == ExprKind::Add || kind() == ExprKind::Mul,
                "expr has no operands");
  return Node->Rhs;
}

Expr Expr::makeAdd(Expr L, Expr R) {
  DISTAL_ASSERT(L.defined() && R.defined(), "undefined operand");
  Expr E;
  auto N = std::make_shared<ExprNode>();
  N->Kind = ExprKind::Add;
  N->Lhs = std::move(L);
  N->Rhs = std::move(R);
  E.Node = std::move(N);
  return E;
}

Expr Expr::makeMul(Expr L, Expr R) {
  DISTAL_ASSERT(L.defined() && R.defined(), "undefined operand");
  Expr E;
  auto N = std::make_shared<ExprNode>();
  N->Kind = ExprKind::Mul;
  N->Lhs = std::move(L);
  N->Rhs = std::move(R);
  E.Node = std::move(N);
  return E;
}

Expr distal::operator+(const Expr &L, const Expr &R) {
  return Expr::makeAdd(L, R);
}

Expr distal::operator*(const Expr &L, const Expr &R) {
  return Expr::makeMul(L, R);
}

std::string Expr::str() const {
  switch (kind()) {
  case ExprKind::Access:
    return access().str();
  case ExprKind::Literal: {
    std::ostringstream OS;
    OS << literal();
    return OS.str();
  }
  case ExprKind::Add:
    return "(" + lhs().str() + " + " + rhs().str() + ")";
  case ExprKind::Mul:
    return lhs().str() + " * " + rhs().str();
  }
  unreachable("unknown expr kind");
}

void distal::gatherAccesses(const Expr &E, std::vector<Access> &Out) {
  switch (E.kind()) {
  case ExprKind::Access:
    Out.push_back(E.access());
    return;
  case ExprKind::Literal:
    return;
  case ExprKind::Add:
  case ExprKind::Mul:
    gatherAccesses(E.lhs(), Out);
    gatherAccesses(E.rhs(), Out);
    return;
  }
}

Assignment::Assignment(Access Lhs, Expr Rhs)
    : Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {
  DISTAL_ASSERT(this->Lhs.tensor().defined(), "assignment to undefined tensor");
  DISTAL_ASSERT(this->Rhs.defined(), "assignment from undefined expression");
  (void)inferDomains(); // Validates extent consistency eagerly.
}

std::vector<Access> Assignment::accesses() const {
  std::vector<Access> Result = {Lhs};
  gatherAccesses(Rhs, Result);
  return Result;
}

std::vector<Access> Assignment::rhsAccesses() const {
  std::vector<Access> Result;
  gatherAccesses(Rhs, Result);
  return Result;
}

std::vector<TensorVar> Assignment::tensors() const {
  std::vector<TensorVar> Result;
  std::set<TensorVar> Seen;
  for (const Access &A : accesses())
    if (Seen.insert(A.tensor()).second)
      Result.push_back(A.tensor());
  return Result;
}

std::vector<IndexVar> Assignment::freeVars() const { return Lhs.indices(); }

std::vector<IndexVar> Assignment::reductionVars() const {
  std::set<IndexVar> Free(Lhs.indices().begin(), Lhs.indices().end());
  std::vector<IndexVar> Result;
  std::set<IndexVar> Seen;
  for (const Access &A : rhsAccesses())
    for (const IndexVar &V : A.indices())
      if (!Free.count(V) && Seen.insert(V).second)
        Result.push_back(V);
  return Result;
}

std::vector<IndexVar> Assignment::defaultLoopOrder() const {
  std::vector<IndexVar> Result;
  std::set<IndexVar> Seen;
  for (const Access &A : accesses())
    for (const IndexVar &V : A.indices())
      if (Seen.insert(V).second)
        Result.push_back(V);
  return Result;
}

std::map<IndexVar, Coord> Assignment::inferDomains() const {
  std::map<IndexVar, Coord> Domains;
  for (const Access &A : accesses()) {
    const std::vector<Coord> &Shape = A.tensor().shape();
    for (size_t I = 0; I < A.indices().size(); ++I) {
      const IndexVar &V = A.indices()[I];
      auto It = Domains.find(V);
      if (It == Domains.end()) {
        Domains[V] = Shape[I];
        continue;
      }
      if (It->second != Shape[I])
        reportFatalError("index variable '" + V.name() +
                         "' has inconsistent extents " +
                         std::to_string(It->second) + " and " +
                         std::to_string(Shape[I]));
    }
  }
  return Domains;
}

std::string Assignment::str() const {
  std::string Op = hasReduction() ? " += " : " = ";
  return Lhs.str() + Op + Rhs.str();
}
