//===- ir/IndexNotation.h - Tensor index notation AST ----------*- C++ -*-===//
///
/// \file
/// Tensor index notation, DISTAL's computation language (paper §2).
/// Statements are assignments whose left-hand side is a tensor access and
/// whose right-hand side is built from additions and multiplications of
/// accesses; index variables appearing only on the right-hand side denote
/// sum reductions over their domain, e.g. the TTV kernel
///   A(i,j) = B(i,j,k) * c(k).
///
//===----------------------------------------------------------------------===//

#ifndef DISTAL_IR_INDEXNOTATION_H
#define DISTAL_IR_INDEXNOTATION_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/Geometry.h"

namespace distal {

/// An index variable ranging over one dimension of an iteration space.
/// IndexVars are value types; identity is by a unique id so that two
/// distinct variables may share a display name.
class IndexVar {
public:
  /// Creates a fresh variable with a generated name.
  IndexVar();
  /// Creates a fresh variable with the given display name.
  explicit IndexVar(std::string Name);

  const std::string &name() const { return Content->Name; }
  int id() const { return Content->Id; }

  bool operator==(const IndexVar &O) const { return Content == O.Content; }
  bool operator!=(const IndexVar &O) const { return !(*this == O); }
  bool operator<(const IndexVar &O) const { return id() < O.id(); }

private:
  struct Payload {
    std::string Name;
    int Id;
  };
  std::shared_ptr<Payload> Content;
};

/// An abstract tensor operand: a name and a dense shape. TensorVars are
/// value types with shared identity, so copies refer to the same tensor.
class TensorVar {
public:
  TensorVar() = default;
  TensorVar(std::string Name, std::vector<Coord> Shape);

  bool defined() const { return Content != nullptr; }
  const std::string &name() const;
  const std::vector<Coord> &shape() const;
  int order() const { return static_cast<int>(shape().size()); }

  bool operator==(const TensorVar &O) const { return Content == O.Content; }
  bool operator!=(const TensorVar &O) const { return !(*this == O); }
  bool operator<(const TensorVar &O) const { return Content < O.Content; }

  /// Opaque identity token (stable for the variable's lifetime; distinct
  /// live tensors never share one). Used by plan fingerprinting so a cached
  /// compilation can never be confused with a recreated tensor of the same
  /// name and shape.
  const void *identity() const { return Content.get(); }

private:
  struct Payload {
    std::string Name;
    std::vector<Coord> Shape;
  };
  std::shared_ptr<Payload> Content;
};

class Expr;

/// A tensor access T(i, j, ...). A 0-order tensor is accessed with no
/// index variables.
class Access {
public:
  Access() = default;
  Access(TensorVar Tensor, std::vector<IndexVar> Indices);

  const TensorVar &tensor() const { return Tensor; }
  const std::vector<IndexVar> &indices() const { return Indices; }

  /// Implicit conversion so an access can be used as an expression.
  operator Expr() const; // NOLINT(google-explicit-constructor)

  std::string str() const;

private:
  TensorVar Tensor;
  std::vector<IndexVar> Indices;
};

/// Expression node kinds.
enum class ExprKind { Access, Literal, Add, Mul };

struct ExprNode;

/// An immutable expression tree over accesses, literals, +, and *.
class Expr {
public:
  Expr() = default;
  Expr(double Literal); // NOLINT(google-explicit-constructor)
  Expr(const Access &A); // NOLINT(google-explicit-constructor)

  bool defined() const { return Node != nullptr; }
  ExprKind kind() const;

  /// For Access nodes.
  const Access &access() const;
  /// For Literal nodes.
  double literal() const;
  /// For Add/Mul nodes.
  const Expr &lhs() const;
  const Expr &rhs() const;

  std::string str() const;

  static Expr makeAdd(Expr L, Expr R);
  static Expr makeMul(Expr L, Expr R);

private:
  std::shared_ptr<const ExprNode> Node;
};

Expr operator+(const Expr &L, const Expr &R);
Expr operator*(const Expr &L, const Expr &R);

/// An assignment statement `lhs = rhs` (or `lhs += rhs` when Accumulate is
/// set by the lowering of reduction handling).
class Assignment {
public:
  Assignment() = default;
  Assignment(Access Lhs, Expr Rhs);

  const Access &lhs() const { return Lhs; }
  const Expr &rhs() const { return Rhs; }

  /// All accesses appearing in the statement, left-hand side first.
  std::vector<Access> accesses() const;
  /// Right-hand-side accesses only.
  std::vector<Access> rhsAccesses() const;
  /// Distinct tensors, left-hand side first.
  std::vector<TensorVar> tensors() const;

  /// Free variables: those used on the left-hand side.
  std::vector<IndexVar> freeVars() const;
  /// Reduction variables: used on the right-hand side only.
  std::vector<IndexVar> reductionVars() const;
  /// Default loop order: variables in order of first appearance, left-hand
  /// side first then the right-hand side left to right (TACO's order).
  std::vector<IndexVar> defaultLoopOrder() const;
  bool hasReduction() const { return !reductionVars().empty(); }

  /// Infers the extent of every index variable from the shapes of the
  /// tensors it indexes. Reports a fatal error on inconsistent extents.
  std::map<IndexVar, Coord> inferDomains() const;

  std::string str() const;

private:
  Access Lhs;
  Expr Rhs;
};

/// Collects the accesses in \p E in left-to-right order.
void gatherAccesses(const Expr &E, std::vector<Access> &Out);

} // namespace distal

#endif // DISTAL_IR_INDEXNOTATION_H
