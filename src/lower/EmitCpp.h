//===- lower/EmitCpp.h - Generated-program printer -------------*- C++ -*-===//
///
/// \file
/// Renders a lowered Plan as the Legion-style C++ program DISTAL would
/// generate (paper Fig. 3's "Legion Program" box): index task launches over
/// the machine, partition creation per communicate tag, rotation index
/// arithmetic, sequential step loops, and the leaf kernel. Used for
/// inspection, documentation, and golden tests pinning the lowering.
///
//===----------------------------------------------------------------------===//

#ifndef DISTAL_LOWER_EMITCPP_H
#define DISTAL_LOWER_EMITCPP_H

#include <string>

#include "lower/Plan.h"

namespace distal {

/// Renders \p P as a readable Legion-like C++ program.
std::string emitCpp(const Plan &P);

} // namespace distal

#endif // DISTAL_LOWER_EMITCPP_H
