//===- lower/Lower.h - Lowering concrete index notation --------*- C++ -*-===//
///
/// \file
/// Lowers scheduled concrete index notation to a distributed Plan
/// (paper §6.2): distributed foralls become index task launches,
/// communicate tags choose partition granularity, and the innermost loops
/// are selected as the leaf kernel. Also implements the §5.3 translation of
/// tensor distribution notation into a placement nest.
///
//===----------------------------------------------------------------------===//

#ifndef DISTAL_LOWER_LOWER_H
#define DISTAL_LOWER_LOWER_H

#include <map>

#include "lower/Plan.h"

namespace distal {

/// Lowers a scheduled nest to a Plan targeting machine \p M with the given
/// tensor formats. Reports fatal errors on inconsistent inputs. Tensors
/// without a communicate tag default to task-level communication (a
/// granularity choice only; results are unaffected).
Plan lower(ConcreteNest Nest, Machine M, std::map<TensorVar, Format> Formats);

/// Lowers a tensor distribution notation statement to the concrete index
/// notation placement nest of §5.3 (e.g. for T xy->x M:
/// forall xo forall xi forall y T(x,y) s.t. divide, distribute,
/// communicate). Used to place or re-distribute tensors.
ConcreteNest lowerPlacement(const TensorVar &T, const TensorDistribution &D,
                            const Machine &M);

} // namespace distal

#endif // DISTAL_LOWER_LOWER_H
