//===- lower/Bounds.h - Communication bounds analysis ----------*- C++ -*-===//
///
/// \file
/// Derives the hyper-rectangle of a tensor access touched by a set of loop
/// iterations — the "standard bounds analysis procedure using the extents
/// of index variables" that DISTAL feeds to Legion's partitioning API
/// (paper §6.2). Loop variables bound to points are fixed; unbound loop
/// variables contribute their full extents via the provenance graph's
/// interval recovery.
///
//===----------------------------------------------------------------------===//

#ifndef DISTAL_LOWER_BOUNDS_H
#define DISTAL_LOWER_BOUNDS_H

#include <map>

#include "ir/IndexNotation.h"
#include "schedule/Provenance.h"

namespace distal {

/// The rectangle of \p A's tensor read (or written) across all iterations
/// consistent with \p Known.
Rect accessRect(const Access &A, const ProvenanceGraph &Prov,
                const std::map<IndexVar, Interval> &Known);

/// The number of iteration-space points executed by the loops consistent
/// with \p Known: the product of the recovered interval widths of
/// \p OriginalVars.
int64_t iterationCount(const std::vector<IndexVar> &OriginalVars,
                       const ProvenanceGraph &Prov,
                       const std::map<IndexVar, Interval> &Known);

} // namespace distal

#endif // DISTAL_LOWER_BOUNDS_H
