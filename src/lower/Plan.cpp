//===- lower/Plan.cpp -----------------------------------------*- C++ -*-===//

#include "lower/Plan.h"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

#include "support/Error.h"

using namespace distal;

Rect Plan::launchDomain() const {
  std::vector<Coord> Extents;
  for (int I = 0; I < NumDist; ++I)
    Extents.push_back(Nest.Prov.extent(Nest.Loops[I].Var));
  return Rect::forExtents(Extents);
}

std::vector<IndexVar> Plan::distVars() const {
  std::vector<IndexVar> Vars;
  for (int I = 0; I < NumDist; ++I)
    Vars.push_back(Nest.Loops[I].Var);
  return Vars;
}

std::vector<IndexVar> Plan::stepVars() const {
  std::vector<IndexVar> Vars;
  for (int I = NumDist; I < LeafBegin; ++I)
    Vars.push_back(Nest.Loops[I].Var);
  return Vars;
}

std::vector<IndexVar> Plan::leafVars() const {
  std::vector<IndexVar> Vars;
  for (int I = LeafBegin; I < static_cast<int>(Nest.Loops.size()); ++I)
    Vars.push_back(Nest.Loops[I].Var);
  return Vars;
}

Rect Plan::stepDomain() const {
  std::vector<Coord> Extents;
  for (int I = NumDist; I < LeafBegin; ++I)
    Extents.push_back(Nest.Prov.extent(Nest.Loops[I].Var));
  return Rect::forExtents(Extents);
}

std::vector<TensorVar> Plan::taskComms() const {
  std::vector<TensorVar> Tensors;
  for (int I = 0; I < NumDist; ++I)
    for (const TensorVar &T : Nest.Loops[I].Communicate)
      Tensors.push_back(T);
  return Tensors;
}

std::vector<StepComm> Plan::stepComms() const {
  std::vector<StepComm> Comms;
  for (int I = NumDist; I < LeafBegin; ++I)
    for (const TensorVar &T : Nest.Loops[I].Communicate)
      Comms.push_back(StepComm{T, I, Nest.Prov.isRotationResult(Nest.Loops[I].Var)});
  return Comms;
}

const Format &Plan::formatOf(const TensorVar &T) const {
  auto It = Formats.find(T);
  DISTAL_ASSERT(It != Formats.end(), "tensor has no format in plan");
  return It->second;
}

int64_t Plan::distReductionFactor() const {
  std::vector<IndexVar> Frees = Nest.Stmt.freeVars();
  std::set<IndexVar> FreeSet(Frees.begin(), Frees.end());
  // A distributed loop variable contributes to the reduction factor when no
  // free (output) variable derives from it. We check by recovering each free
  // variable's interval with only this loop bound to a point: if every free
  // variable still spans its full extent, the loop is reduction-only.
  int64_t Factor = 1;
  for (int I = 0; I < NumDist; ++I) {
    const IndexVar &V = Nest.Loops[I].Var;
    std::map<IndexVar, Interval> Known = {{V, Interval::point(0)}};
    bool AffectsOutput = false;
    for (const IndexVar &F : FreeSet) {
      Interval Full = Interval::range(0, Nest.Prov.extent(F));
      if (!(Nest.Prov.recoverInterval(F, Known) == Full))
        AffectsOutput = true;
    }
    if (!AffectsOutput)
      Factor *= Nest.Prov.extent(V);
  }
  return Factor;
}

std::string Plan::fingerprint() const {
  std::ostringstream OS;
  // Index variables are renamed canonically by order of first appearance
  // (loops first, then the statement), so structurally identical plans
  // built from fresh IndexVar objects fingerprint equal.
  std::map<int, int> Canon;
  auto canon = [&](const IndexVar &V) {
    auto [It, New] = Canon.emplace(V.id(), static_cast<int>(Canon.size()));
    (void)New;
    return "v" + std::to_string(It->second);
  };
  std::vector<TensorVar> Tensors = Nest.Stmt.tensors();
  std::map<TensorVar, int> TIdx;
  for (size_t I = 0; I < Tensors.size(); ++I)
    TIdx[Tensors[I]] = static_cast<int>(I);
  auto tensorTok = [&](const TensorVar &T) {
    return "t" + std::to_string(TIdx.at(T));
  };

  // Machine::str() omits flat node grouping, but compilation bakes
  // node-dependent SameNode flags and relay choices into the artifact, so
  // the node count must key too.
  OS << "machine=" << M.str() << ";nodes=" << M.numNodes()
     << ";dist=" << NumDist << ";leafbegin=" << LeafBegin
     << ";leafkernel=" << (Nest.Leaf == LeafKernel::GeMM ? "gemm" : "generic");

  OS << ";loops=[";
  for (const LoopSpec &L : Nest.Loops) {
    OS << canon(L.Var) << ":" << Nest.Prov.extent(L.Var);
    if (L.Distributed)
      OS << ":dist";
    if (L.Parallelized)
      OS << ":par";
    for (const TensorVar &T : L.Communicate)
      OS << ":comm(" << tensorTok(T) << ")";
    OS << ";";
  }
  OS << "]";

  std::function<void(const Expr &)> Emit = [&](const Expr &E) {
    switch (E.kind()) {
    case ExprKind::Access: {
      OS << tensorTok(E.access().tensor()) << "(";
      for (const IndexVar &V : E.access().indices())
        OS << canon(V) << ",";
      OS << ")";
      return;
    }
    case ExprKind::Literal:
      // Hexfloat: the default 6-digit precision would collide literals
      // differing beyond it, serving an artifact with the wrong constant.
      OS << std::hexfloat << E.literal() << std::defaultfloat;
      return;
    case ExprKind::Add:
    case ExprKind::Mul:
      OS << "(";
      Emit(E.lhs());
      OS << (E.kind() == ExprKind::Add ? "+" : "*");
      Emit(E.rhs());
      OS << ")";
      return;
    }
  };
  OS << ";stmt=" << tensorTok(Nest.Stmt.lhs().tensor()) << "(";
  for (const IndexVar &V : Nest.Stmt.lhs().indices())
    OS << canon(V) << ",";
  OS << ")=";
  Emit(Nest.Stmt.rhs());

  // Derivation structure. The relation strings use display names; the
  // canonical mapping recorded above pins which variable each display name
  // refers to in this plan, and extents pin the scheduling factors.
  OS << ";prov={" << Nest.Prov.str() << "}";

  OS << ";tensors=[";
  for (const TensorVar &T : Tensors) {
    OS << T.name() << "@" << T.identity() << ":shape(";
    for (Coord D : T.shape())
      OS << D << ",";
    OS << "):" << formatOf(T).str() << ";";
  }
  OS << "]";
  return OS.str();
}

std::string Plan::str() const {
  std::ostringstream OS;
  OS << "plan on " << M.str() << "\n";
  OS << "  launch domain " << launchDomain().str() << ", steps "
     << stepDomain().volume() << ", leaf loops "
     << (Nest.Loops.size() - LeafBegin) << "\n";
  OS << Nest.str();
  return OS.str();
}

Status distal::validateProgramPlans(const std::vector<const Plan *> &Plans) {
  if (Plans.empty())
    return Status(ErrorCode::InvalidArgument,
                  "program requires at least one statement");
  for (size_t I = 0; I < Plans.size(); ++I)
    if (!Plans[I])
      return Status(ErrorCode::InvalidArgument,
                    "program statement " + std::to_string(I) +
                        " has no plan");
  std::string M0 = Plans.front()->M.str();
  for (size_t I = 1; I < Plans.size(); ++I)
    if (Plans[I]->M.str() != M0)
      return Status(ErrorCode::InvalidArgument,
                    "program statement " + std::to_string(I) +
                        " targets a different machine than statement 0; "
                        "residency linking requires one machine");
  return Status();
}

std::string distal::programFingerprint(const std::vector<const Plan *> &Plans) {
  std::string FP = "program{";
  for (const Plan *P : Plans) {
    FP += P ? P->fingerprint() : "<null>";
    FP += '|';
  }
  FP += '}';
  return FP;
}
