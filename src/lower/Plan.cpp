//===- lower/Plan.cpp -----------------------------------------*- C++ -*-===//

#include "lower/Plan.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/Error.h"

using namespace distal;

Rect Plan::launchDomain() const {
  std::vector<Coord> Extents;
  for (int I = 0; I < NumDist; ++I)
    Extents.push_back(Nest.Prov.extent(Nest.Loops[I].Var));
  return Rect::forExtents(Extents);
}

std::vector<IndexVar> Plan::distVars() const {
  std::vector<IndexVar> Vars;
  for (int I = 0; I < NumDist; ++I)
    Vars.push_back(Nest.Loops[I].Var);
  return Vars;
}

std::vector<IndexVar> Plan::stepVars() const {
  std::vector<IndexVar> Vars;
  for (int I = NumDist; I < LeafBegin; ++I)
    Vars.push_back(Nest.Loops[I].Var);
  return Vars;
}

std::vector<IndexVar> Plan::leafVars() const {
  std::vector<IndexVar> Vars;
  for (int I = LeafBegin; I < static_cast<int>(Nest.Loops.size()); ++I)
    Vars.push_back(Nest.Loops[I].Var);
  return Vars;
}

Rect Plan::stepDomain() const {
  std::vector<Coord> Extents;
  for (int I = NumDist; I < LeafBegin; ++I)
    Extents.push_back(Nest.Prov.extent(Nest.Loops[I].Var));
  return Rect::forExtents(Extents);
}

std::vector<TensorVar> Plan::taskComms() const {
  std::vector<TensorVar> Tensors;
  for (int I = 0; I < NumDist; ++I)
    for (const TensorVar &T : Nest.Loops[I].Communicate)
      Tensors.push_back(T);
  return Tensors;
}

std::vector<StepComm> Plan::stepComms() const {
  std::vector<StepComm> Comms;
  for (int I = NumDist; I < LeafBegin; ++I)
    for (const TensorVar &T : Nest.Loops[I].Communicate)
      Comms.push_back(StepComm{T, I});
  return Comms;
}

const Format &Plan::formatOf(const TensorVar &T) const {
  auto It = Formats.find(T);
  DISTAL_ASSERT(It != Formats.end(), "tensor has no format in plan");
  return It->second;
}

int64_t Plan::distReductionFactor() const {
  std::vector<IndexVar> Frees = Nest.Stmt.freeVars();
  std::set<IndexVar> FreeSet(Frees.begin(), Frees.end());
  // A distributed loop variable contributes to the reduction factor when no
  // free (output) variable derives from it. We check by recovering each free
  // variable's interval with only this loop bound to a point: if every free
  // variable still spans its full extent, the loop is reduction-only.
  int64_t Factor = 1;
  for (int I = 0; I < NumDist; ++I) {
    const IndexVar &V = Nest.Loops[I].Var;
    std::map<IndexVar, Interval> Known = {{V, Interval::point(0)}};
    bool AffectsOutput = false;
    for (const IndexVar &F : FreeSet) {
      Interval Full = Interval::range(0, Nest.Prov.extent(F));
      if (!(Nest.Prov.recoverInterval(F, Known) == Full))
        AffectsOutput = true;
    }
    if (!AffectsOutput)
      Factor *= Nest.Prov.extent(V);
  }
  return Factor;
}

std::string Plan::str() const {
  std::ostringstream OS;
  OS << "plan on " << M.str() << "\n";
  OS << "  launch domain " << launchDomain().str() << ", steps "
     << stepDomain().volume() << ", leaf loops "
     << (Nest.Loops.size() - LeafBegin) << "\n";
  OS << Nest.str();
  return OS.str();
}
