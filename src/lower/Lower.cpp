//===- lower/Lower.cpp ----------------------------------------*- C++ -*-===//

#include "lower/Lower.h"

#include <algorithm>
#include <set>

#include "support/Error.h"

using namespace distal;

Plan distal::lower(ConcreteNest Nest, Machine M,
                   std::map<TensorVar, Format> Formats) {
  Plan P;
  P.NumDist = Nest.distributedPrefix();
  if (P.NumDist == 0)
    reportFatalError("lowering requires at least one distributed loop; "
                     "use distribute");

  // Every tensor must have a format valid for the machine.
  for (const TensorVar &T : Nest.Stmt.tensors()) {
    auto It = Formats.find(T);
    if (It == Formats.end())
      reportFatalError("tensor '" + T.name() + "' has no format");
    It->second.distribution().validate(T.order(), M);
    if (It->second.order() != T.order())
      reportFatalError("format order mismatch for tensor '" + T.name() + "'");
  }

  // Tensors without a communicate tag default to task-level communication
  // at the innermost distributed loop. (The paper's default nests
  // communication under the innermost variable; hoisting to the task level
  // only coarsens granularity and never changes results.)
  std::set<TensorVar> Communicated;
  for (const LoopSpec &L : Nest.Loops)
    for (const TensorVar &T : L.Communicate)
      Communicated.insert(T);
  for (const TensorVar &T : Nest.Stmt.tensors())
    if (!Communicated.count(T))
      Nest.Loops[P.NumDist - 1].Communicate.push_back(T);

  // The output tensor must be communicated at the task level so each task
  // accumulates into a single private instance across its sequential steps.
  const TensorVar &Out = Nest.Stmt.lhs().tensor();
  for (int I = P.NumDist; I < static_cast<int>(Nest.Loops.size()); ++I)
    for (const TensorVar &T : Nest.Loops[I].Communicate)
      if (T == Out)
        reportFatalError("output tensor '" + Out.name() +
                         "' must be communicated at a distributed loop");

  // Leaf loops start after the innermost communicate tag.
  int LastComm = P.NumDist - 1;
  for (int I = P.NumDist; I < static_cast<int>(Nest.Loops.size()); ++I)
    if (!Nest.Loops[I].Communicate.empty())
      LastComm = I;
  P.LeafBegin = std::max(P.NumDist, LastComm + 1);

  if (Nest.Leaf == LeafKernel::GeMM) {
    if (Nest.Stmt.rhsAccesses().size() != 2)
      reportFatalError("GeMM leaf substitution requires a two-operand "
                       "product");
  }

  P.Nest = std::move(Nest);
  P.M = std::move(M);
  P.Formats = std::move(Formats);
  return P;
}

ConcreteNest distal::lowerPlacement(const TensorVar &T,
                                    const TensorDistribution &D,
                                    const Machine &M) {
  D.validate(T.order(), M);
  // Step 1-2 of §5.3: build a loop nest over the tensor dimensions (plus
  // broadcast machine dimensions) accessing T, then divide and distribute
  // the partitioned dimensions per machine level.
  std::vector<IndexVar> TensorVars;
  for (int I = 0; I < T.order(); ++I)
    TensorVars.push_back(IndexVar("x" + std::to_string(I)));
  Assignment Stmt(Access(T, TensorVars), Expr(Access(T, TensorVars)));
  Schedule S(Stmt);
  std::vector<IndexVar> DistOrder;
  std::vector<IndexVar> Current = TensorVars;
  for (int LI = 0; LI < D.numLevels(); ++LI) {
    const DistributionLevel &L = D.level(LI);
    for (int MD = 0; MD < M.level(LI).dim(); ++MD) {
      const MachineDimName &N = L.MachineDims[MD];
      if (N.Kind != MachineDimName::Name)
        continue; // Fixed and broadcast dims need no loop of their own.
      int TD = L.tensorDimNamed(N.Id);
      IndexVar Outer(N.Id + "o" + std::to_string(LI)),
          Inner(N.Id + "i" + std::to_string(LI));
      S.divide(Current[TD], Outer, Inner, M.level(LI).Dims[MD]);
      DistOrder.push_back(Outer);
      Current[TD] = Inner;
    }
  }
  // Step 3-4: reorder the distributed variables outermost and distribute.
  std::vector<IndexVar> Order = DistOrder;
  for (const IndexVar &V : Current)
    Order.push_back(V);
  S.reorder(Order).distribute(DistOrder);
  // Step 5: communicate T underneath the distributed variables.
  if (!DistOrder.empty())
    S.communicate(T, DistOrder.back());
  return S.takeNest();
}
