//===- lower/Bounds.cpp ---------------------------------------*- C++ -*-===//

#include "lower/Bounds.h"

#include "support/Error.h"

using namespace distal;

Rect distal::accessRect(const Access &A, const ProvenanceGraph &Prov,
                        const std::map<IndexVar, Interval> &Known) {
  int Order = A.tensor().order();
  std::vector<Coord> Lo(Order), Hi(Order);
  for (int D = 0; D < Order; ++D) {
    Interval I = Prov.recoverInterval(A.indices()[D], Known);
    Lo[D] = I.Lo;
    Hi[D] = I.Hi;
  }
  return Rect(Point(std::move(Lo)), Point(std::move(Hi)));
}

int64_t distal::iterationCount(const std::vector<IndexVar> &OriginalVars,
                               const ProvenanceGraph &Prov,
                               const std::map<IndexVar, Interval> &Known) {
  int64_t Count = 1;
  for (const IndexVar &V : OriginalVars) {
    Interval I = Prov.recoverInterval(V, Known);
    Count *= std::max<Coord>(I.width(), 0);
  }
  return Count;
}
