//===- lower/Plan.h - Lowered distributed plans ----------------*- C++ -*-===//
///
/// \file
/// The target program of DISTAL's lowering (paper §6.2): distributed loops
/// become an index task launch over the machine; sequential loops carrying
/// communicate tags become per-step partitions; the remaining inner loops
/// become the leaf kernel run by every task. A Plan is the runtime-program
/// analogue of the Legion program DISTAL generates.
///
//===----------------------------------------------------------------------===//

#ifndef DISTAL_LOWER_PLAN_H
#define DISTAL_LOWER_PLAN_H

#include <map>
#include <vector>

#include "format/Format.h"
#include "machine/Machine.h"
#include "schedule/Schedule.h"
#include "support/Status.h"

namespace distal {

/// A tensor communicated at a sequential (step) loop.
struct StepComm {
  TensorVar Tensor;
  int LoopIdx;
  /// The communication loop's variable is a rotation result: consecutive
  /// steps shift each fetched block between neighbouring processors, so a
  /// step's rectangle may be relay-fed from the holder of the previous
  /// step. Non-rotated step comms always fetch from the home distribution
  /// and are therefore freely prefetchable one step ahead; rotated ones
  /// need the relay-source dependency the prefetch schedule records.
  bool Rotated = false;
};

/// A lowered distributed program.
class Plan {
public:
  ConcreteNest Nest;
  Machine M;
  std::map<TensorVar, Format> Formats;
  /// Loops [0, NumDist) are the index task launch dimensions.
  int NumDist = 0;
  /// Loops [NumDist, LeafBegin) are lock-step sequential loops; loops
  /// [LeafBegin, end) form the leaf kernel.
  int LeafBegin = 0;

  /// The index task launch domain (one task per point).
  Rect launchDomain() const;
  std::vector<IndexVar> distVars() const;
  std::vector<IndexVar> stepVars() const;
  std::vector<IndexVar> leafVars() const;
  /// The sequential step domain iterated in lock step by every task.
  Rect stepDomain() const;

  /// Tensors communicated once per task (tagged at distributed loops).
  std::vector<TensorVar> taskComms() const;
  /// Tensors communicated at each iteration of a sequential loop.
  std::vector<StepComm> stepComms() const;

  const Format &formatOf(const TensorVar &T) const;

  /// Number of distinct tasks contributing partial sums to the same output
  /// element: the product of extents of distributed reduction variables
  /// (1 when the launch is owner-computes).
  int64_t distReductionFactor() const;

  /// A stable cache key for the compiled form of this plan: a canonical
  /// serialization of everything compilation depends on — machine, loop
  /// structure and tags (with index variables renamed by first
  /// appearance, so textually identical schedules built from fresh
  /// IndexVars key equal), statement, per-variable extents, provenance
  /// relations, and per-tensor name/shape/format/identity. Execute-time
  /// knobs (threads, trace mode) do not participate. Two plans with equal
  /// fingerprints compile to interchangeable artifacts.
  std::string fingerprint() const;

  std::string str() const;
};

/// Validates an ordered statement chain for program-level linking: every
/// plan non-null and on the same machine (residency linking compares
/// processor ids across statements, which is only meaningful on one
/// machine). Returns OK or InvalidArgument naming the offending member.
Status validateProgramPlans(const std::vector<const Plan *> &Plans);

/// The statement-fingerprint chain of an ordered plan list — the
/// program-level analogue of Plan::fingerprint. Two chains with equal
/// program fingerprints link to interchangeable program artifacts.
std::string programFingerprint(const std::vector<const Plan *> &Plans);

} // namespace distal

#endif // DISTAL_LOWER_PLAN_H
