//===- blas/LocalKernels.cpp ----------------------------------*- C++ -*-===//

#include "blas/LocalKernels.h"

#include <algorithm>
#include <vector>

#include "support/ThreadPool.h"

namespace distal {
namespace blas {

namespace {

constexpr int64_t MR = 4, NR = 32;
constexpr int64_t BlockK = 256, BlockN = 1024;
/// Below this many multiply-adds, packing (and parallel fan-out) costs
/// more than it buys; fall through to the unpacked blocked loop.
constexpr int64_t PackFlopCutoff = 1 << 16;
constexpr int64_t ParallelFlopCutoff = 1 << 20;

/// MR x NR register-resident micro-kernel over packed panels: Ap holds an
/// MR-wide column-major A panel (Ap[k*MR + i]), Bp an NR-wide row-major B
/// panel (Bp[k*NR + j]). The compile-time strides are what lets the
/// vectorizer keep the MR x NR accumulator block in registers (4 rows x 4
/// zmm on AVX-512) across the K loop.
inline void microKernel(double *__restrict__ C, const double *__restrict__ Ap,
                        const double *__restrict__ Bp, int64_t K,
                        int64_t LdC) {
  double Acc[MR][NR] = {};
  for (int64_t KK = 0; KK < K; ++KK) {
    const double *__restrict__ BRow = Bp + KK * NR;
    for (int I = 0; I < MR; ++I) {
      double AVal = Ap[KK * MR + I];
      for (int J = 0; J < NR; ++J)
        Acc[I][J] += AVal * BRow[J];
    }
  }
  for (int I = 0; I < MR; ++I)
    for (int J = 0; J < NR; ++J)
      C[I * LdC + J] += Acc[I][J];
}

/// Unpacked fallback for fringes narrower than the micro-kernel.
inline void edgeKernel(double *C, const double *A, const double *B, int64_t M,
                       int64_t N, int64_t K, int64_t LdC, int64_t LdA,
                       int64_t LdB) {
  for (int64_t I = 0; I < M; ++I)
    for (int64_t KK = 0; KK < K; ++KK) {
      double AVal = A[I * LdA + KK];
      const double *BRow = B + KK * LdB;
      double *CRow = C + I * LdC;
      for (int64_t J = 0; J < N; ++J)
        CRow[J] += AVal * BRow[J];
    }
}

/// Rows [MLo, MHi) of one (K-block, N-block) step: pack each MR row panel
/// of A on the worker's stack and stream the packed B panels through it.
/// Workers own disjoint C rows and the per-element accumulation order
/// (ascending K within ascending K blocks) is independent of the split, so
/// parallel runs are bitwise-identical to sequential ones.
void gemmRowsPacked(double *C, const double *A, const double *Bp,
                    const double *BEdge, int64_t MLo, int64_t MHi, int64_t N,
                    int64_t KLen, int64_t LdC, int64_t LdA, int64_t LdB) {
  double Ap[MR * BlockK];
  int64_t FullN = N - N % NR;
  int64_t I = MLo;
  for (; I + MR <= MHi; I += MR) {
    for (int64_t KK = 0; KK < KLen; ++KK)
      for (int64_t R = 0; R < MR; ++R)
        Ap[KK * MR + R] = A[(I + R) * LdA + KK];
    for (int64_t J = 0; J + NR <= N; J += NR)
      microKernel(C + I * LdC + J, Ap, Bp + J * KLen, KLen, LdC);
    if (FullN < N)
      edgeKernel(C + I * LdC + FullN, A + I * LdA, BEdge + FullN, MR,
                 N - FullN, KLen, LdC, LdA, LdB);
  }
  if (I < MHi)
    edgeKernel(C + I * LdC, A + I * LdA, BEdge, MHi - I, N, KLen, LdC, LdA,
               LdB);
}

} // namespace

void gemm(double *C, const double *A, const double *B, int64_t M, int64_t N,
          int64_t K, int64_t LdC, int64_t LdA, int64_t LdB) {
  if (M <= 0 || N <= 0 || K <= 0)
    return;
  if (M * N * K < PackFlopCutoff || M < MR) {
    gemmBlockedReference(C, A, B, M, N, K, LdC, LdA, LdB);
    return;
  }
  // Only touch (and thus lazily construct) the global pool when this call
  // can actually fan out over it.
  bool Parallel = M * N * K >= ParallelFlopCutoff && !ThreadPool::inWorker();
  ThreadPool *Pool = Parallel ? &ThreadPool::global() : nullptr;
  if (Pool && Pool->numThreads() == 1)
    Parallel = false;
  std::vector<double> Bp(
      static_cast<size_t>(std::min(BlockN, N) * std::min(BlockK, K)));
  for (int64_t J0 = 0; J0 < N; J0 += BlockN) {
    int64_t NLen = std::min(BlockN, N - J0);
    for (int64_t K0 = 0; K0 < K; K0 += BlockK) {
      int64_t KLen = std::min(BlockK, K - K0);
      const double *BBlock = B + K0 * LdB + J0;
      for (int64_t J = 0; J + NR <= NLen; J += NR)
        for (int64_t KK = 0; KK < KLen; ++KK)
          for (int64_t R = 0; R < NR; ++R)
            Bp[J * KLen + KK * NR + R] = BBlock[KK * LdB + J + R];
      double *CBlock = C + J0;
      const double *ABlock = A + K0;
      if (!Parallel) {
        gemmRowsPacked(CBlock, ABlock, Bp.data(), BBlock, 0, M, NLen, KLen,
                       LdC, LdA, LdB);
        continue;
      }
      int64_t Panels = (M + MR - 1) / MR;
      Pool->parallelForChunks(Panels, [&](int64_t Lo, int64_t Hi) {
        gemmRowsPacked(CBlock, ABlock, Bp.data(), BBlock, Lo * MR,
                       std::min(Hi * MR, M), NLen, KLen, LdC, LdA, LdB);
      });
    }
  }
}

void gemmBlockedReference(double *C, const double *A, const double *B,
                          int64_t M, int64_t N, int64_t K, int64_t LdC,
                          int64_t LdA, int64_t LdB) {
  constexpr int64_t Bm = 64, Bn = 64, Bk = 64;
  for (int64_t I0 = 0; I0 < M; I0 += Bm)
    for (int64_t K0 = 0; K0 < K; K0 += Bk)
      for (int64_t J0 = 0; J0 < N; J0 += Bn) {
        int64_t IMax = std::min(I0 + Bm, M);
        int64_t KMax = std::min(K0 + Bk, K);
        int64_t JMax = std::min(J0 + Bn, N);
        for (int64_t I = I0; I < IMax; ++I)
          for (int64_t KK = K0; KK < KMax; ++KK) {
            double AVal = A[I * LdA + KK];
            const double *BRow = B + KK * LdB;
            double *CRow = C + I * LdC;
            for (int64_t J = J0; J < JMax; ++J)
              CRow[J] += AVal * BRow[J];
          }
      }
}

void gemmGeneral(double *C, const double *A, const double *B, int64_t M,
                 int64_t N, int64_t K, int64_t CsM, int64_t CsN, int64_t AsM,
                 int64_t AsK, int64_t BsK, int64_t BsN) {
  if (M <= 0 || N <= 0 || K <= 0)
    return;
  if (CsN == 1 && AsK == 1 && BsN == 1) {
    gemm(C, A, B, M, N, K, CsM, AsM, BsK);
    return;
  }
  if (CsM == 1 && AsM == 1 && BsK == 1) {
    // Column-major view: compute C^T += B^T * A^T with the blocked kernel.
    gemm(C, B, A, N, M, K, CsN, BsN, AsK);
    return;
  }
  if (BsN != 1 && AsK == 1) {
    // B transposed: dot-product form keeps A's K loop dense.
    for (int64_t I = 0; I < M; ++I)
      for (int64_t J = 0; J < N; ++J)
        C[I * CsM + J * CsN] +=
            dotStrided(A + I * AsM, 1, B + J * BsN, BsK, K);
    return;
  }
  for (int64_t I = 0; I < M; ++I)
    for (int64_t KK = 0; KK < K; ++KK) {
      double AVal = A[I * AsM + KK * AsK];
      const double *BRow = B + KK * BsK;
      double *CRow = C + I * CsM;
      for (int64_t J = 0; J < N; ++J)
        CRow[J * CsN] += AVal * BRow[J * BsN];
    }
}

void gemv(double *Y, const double *A, const double *X, int64_t M, int64_t K,
          int64_t LdA) {
  for (int64_t I = 0; I < M; ++I) {
    const double *__restrict__ ARow = A + I * LdA;
    double Sum = 0;
    for (int64_t KK = 0; KK < K; ++KK)
      Sum += ARow[KK] * X[KK];
    Y[I] += Sum;
  }
}

double dot(const double *A, const double *B, int64_t N) {
  double Sum = 0;
  for (int64_t I = 0; I < N; ++I)
    Sum += A[I] * B[I];
  return Sum;
}

double dotStrided(const double *A, int64_t SA, const double *B, int64_t SB,
                  int64_t N) {
  if (SA == 1 && SB == 1)
    return dot(A, B, N);
  double Sum = 0;
  for (int64_t I = 0; I < N; ++I)
    Sum += A[I * SA] * B[I * SB];
  return Sum;
}

double sumStrided(const double *A, int64_t SA, int64_t N) {
  double Sum = 0;
  for (int64_t I = 0; I < N; ++I)
    Sum += A[I * SA];
  return Sum;
}

void axpy(double *Y, const double *X, double Alpha, int64_t N) {
  for (int64_t I = 0; I < N; ++I)
    Y[I] += Alpha * X[I];
}

void axpyStrided(double *Y, int64_t SY, const double *X, int64_t SX,
                 double Alpha, int64_t N) {
  if (SY == 1 && SX == 1) {
    axpy(Y, X, Alpha, N);
    return;
  }
  for (int64_t I = 0; I < N; ++I)
    Y[I * SY] += Alpha * X[I * SX];
}

} // namespace blas
} // namespace distal
