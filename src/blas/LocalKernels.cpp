//===- blas/LocalKernels.cpp ----------------------------------*- C++ -*-===//

#include "blas/LocalKernels.h"

#include <algorithm>
#include <vector>

#include "support/ThreadPool.h"

namespace distal {
namespace blas {

namespace {

constexpr int64_t MR = 4, NR = 32;
constexpr int64_t BlockK = 256, BlockN = 1024;
/// Below this many multiply-adds, packing (and parallel fan-out) costs
/// more than it buys; fall through to the unpacked blocked loop.
constexpr int64_t PackFlopCutoff = 1 << 16;
constexpr int64_t ParallelFlopCutoff = 1 << 20;
/// Reductions accumulate per-chunk partials of this fixed size and combine
/// them in chunk order. The association depends only on N — never on the
/// pool or the ways budget — so results are bitwise-identical at every
/// thread configuration.
constexpr int64_t ReduceChunk = 1 << 15;
/// Vector updates shorter than this are not worth a fan-out.
constexpr int64_t VectorParallelCutoff = 1 << 16;

/// The process-global handle used by the context-free entry points. Only
/// recruits the global pool from threads outside every pool, and only
/// touches (and thus lazily constructs) it when the caller already decided
/// to fan out.
LeafParallelism processLeaf() {
  if (ThreadPool::inWorker())
    return {};
  ThreadPool &G = ThreadPool::global();
  return {&G, G.numThreads()};
}

/// Shared fan-out gate: \p Work units amortize a parallel dispatch of \p N
/// sub-ranges only past \p Cutoff.
bool shouldParallelize(const LeafParallelism &LP, int64_t N, int64_t Work,
                       int64_t Cutoff) {
  return LP.enabled() && N > 1 && Work >= Cutoff;
}

/// Runs Body(Lo, Hi) over [0, N): fanned out over \p LP when \p Parallel,
/// inline otherwise.
template <typename Fn>
void runRange(const LeafParallelism &LP, int64_t N, bool Parallel,
              const Fn &Body) {
  if (Parallel)
    LP.Pool->parallelForWays(N, LP.Ways, Body);
  else
    Body(0, N);
}

/// MR x NR register-resident micro-kernel over packed panels: Ap holds an
/// MR-wide column-major A panel (Ap[k*MR + i]), Bp an NR-wide row-major B
/// panel (Bp[k*NR + j]). The compile-time strides are what lets the
/// vectorizer keep the MR x NR accumulator block in registers (4 rows x 4
/// zmm on AVX-512) across the K loop.
inline void microKernel(double *__restrict__ C, const double *__restrict__ Ap,
                        const double *__restrict__ Bp, int64_t K,
                        int64_t LdC) {
  double Acc[MR][NR] = {};
  for (int64_t KK = 0; KK < K; ++KK) {
    const double *__restrict__ BRow = Bp + KK * NR;
    for (int I = 0; I < MR; ++I) {
      double AVal = Ap[KK * MR + I];
      for (int J = 0; J < NR; ++J)
        Acc[I][J] += AVal * BRow[J];
    }
  }
  for (int I = 0; I < MR; ++I)
    for (int J = 0; J < NR; ++J)
      C[I * LdC + J] += Acc[I][J];
}

/// Unpacked fallback for fringes narrower than the micro-kernel.
inline void edgeKernel(double *C, const double *A, const double *B, int64_t M,
                       int64_t N, int64_t K, int64_t LdC, int64_t LdA,
                       int64_t LdB) {
  for (int64_t I = 0; I < M; ++I)
    for (int64_t KK = 0; KK < K; ++KK) {
      double AVal = A[I * LdA + KK];
      const double *BRow = B + KK * LdB;
      double *CRow = C + I * LdC;
      for (int64_t J = 0; J < N; ++J)
        CRow[J] += AVal * BRow[J];
    }
}

/// Rows [MLo, MHi) of one (K-block, N-block) step: pack each MR row panel
/// of A on the worker's stack and stream the packed B panels through it.
/// Workers own disjoint C rows and the per-element accumulation order
/// (ascending K within ascending K blocks) is independent of the split, so
/// parallel runs are bitwise-identical to sequential ones.
void gemmRowsPacked(double *C, const double *A, const double *Bp,
                    const double *BEdge, int64_t MLo, int64_t MHi, int64_t N,
                    int64_t KLen, int64_t LdC, int64_t LdA, int64_t LdB) {
  double Ap[MR * BlockK];
  int64_t FullN = N - N % NR;
  int64_t I = MLo;
  for (; I + MR <= MHi; I += MR) {
    for (int64_t KK = 0; KK < KLen; ++KK)
      for (int64_t R = 0; R < MR; ++R)
        Ap[KK * MR + R] = A[(I + R) * LdA + KK];
    for (int64_t J = 0; J + NR <= N; J += NR)
      microKernel(C + I * LdC + J, Ap, Bp + J * KLen, KLen, LdC);
    if (FullN < N)
      edgeKernel(C + I * LdC + FullN, A + I * LdA, BEdge + FullN, MR,
                 N - FullN, KLen, LdC, LdA, LdB);
  }
  if (I < MHi)
    edgeKernel(C + I * LdC, A + I * LdA, BEdge, MHi - I, N, KLen, LdC, LdA,
               LdB);
}

} // namespace

void gemm(const LeafParallelism &LP, double *C, const double *A,
          const double *B, int64_t M, int64_t N, int64_t K, int64_t LdC,
          int64_t LdA, int64_t LdB) {
  if (M <= 0 || N <= 0 || K <= 0)
    return;
  if (M * N * K < PackFlopCutoff || M < MR) {
    gemmBlockedReference(C, A, B, M, N, K, LdC, LdA, LdB);
    return;
  }
  int64_t Panels = (M + MR - 1) / MR;
  bool Parallel = shouldParallelize(LP, Panels, M * N * K, ParallelFlopCutoff);
  std::vector<double> Bp(
      static_cast<size_t>(std::min(BlockN, N) * std::min(BlockK, K)));
  for (int64_t J0 = 0; J0 < N; J0 += BlockN) {
    int64_t NLen = std::min(BlockN, N - J0);
    for (int64_t K0 = 0; K0 < K; K0 += BlockK) {
      int64_t KLen = std::min(BlockK, K - K0);
      const double *BBlock = B + K0 * LdB + J0;
      for (int64_t J = 0; J + NR <= NLen; J += NR)
        for (int64_t KK = 0; KK < KLen; ++KK)
          for (int64_t R = 0; R < NR; ++R)
            Bp[J * KLen + KK * NR + R] = BBlock[KK * LdB + J + R];
      double *CBlock = C + J0;
      const double *ABlock = A + K0;
      // Row panels cover disjoint C rows: any split is bitwise-identical.
      runRange(LP, Panels, Parallel, [&](int64_t Lo, int64_t Hi) {
        gemmRowsPacked(CBlock, ABlock, Bp.data(), BBlock, Lo * MR,
                       std::min(Hi * MR, M), NLen, KLen, LdC, LdA, LdB);
      });
    }
  }
}

void gemm(double *C, const double *A, const double *B, int64_t M, int64_t N,
          int64_t K, int64_t LdC, int64_t LdA, int64_t LdB) {
  bool WantParallel = M * N * K >= ParallelFlopCutoff;
  gemm(WantParallel ? processLeaf() : LeafParallelism{}, C, A, B, M, N, K,
       LdC, LdA, LdB);
}

void gemmBlockedReference(double *C, const double *A, const double *B,
                          int64_t M, int64_t N, int64_t K, int64_t LdC,
                          int64_t LdA, int64_t LdB) {
  constexpr int64_t Bm = 64, Bn = 64, Bk = 64;
  for (int64_t I0 = 0; I0 < M; I0 += Bm)
    for (int64_t K0 = 0; K0 < K; K0 += Bk)
      for (int64_t J0 = 0; J0 < N; J0 += Bn) {
        int64_t IMax = std::min(I0 + Bm, M);
        int64_t KMax = std::min(K0 + Bk, K);
        int64_t JMax = std::min(J0 + Bn, N);
        for (int64_t I = I0; I < IMax; ++I)
          for (int64_t KK = K0; KK < KMax; ++KK) {
            double AVal = A[I * LdA + KK];
            const double *BRow = B + KK * LdB;
            double *CRow = C + I * LdC;
            for (int64_t J = J0; J < JMax; ++J)
              CRow[J] += AVal * BRow[J];
          }
      }
}

void gemmGeneral(const LeafParallelism &LP, double *C, const double *A,
                 const double *B, int64_t M, int64_t N, int64_t K,
                 int64_t CsM, int64_t CsN, int64_t AsM, int64_t AsK,
                 int64_t BsK, int64_t BsN) {
  if (M <= 0 || N <= 0 || K <= 0)
    return;
  if (CsN == 1 && AsK == 1 && BsN == 1) {
    gemm(LP, C, A, B, M, N, K, CsM, AsM, BsK);
    return;
  }
  if (CsM == 1 && AsM == 1 && BsK == 1) {
    // Column-major view: compute C^T += B^T * A^T with the blocked kernel.
    gemm(LP, C, B, A, N, M, K, CsN, BsN, AsK);
    return;
  }
  if (BsN != 1 && AsK == 1) {
    // B transposed: dot-product form keeps A's K loop dense. Rows of C are
    // disjoint, so the row fan-out is bitwise-deterministic. When the row
    // fan-out is declined (too few rows), the leaf budget goes to the dots
    // instead — their fixed-chunk association is the same either way.
    bool RowsParallel = shouldParallelize(LP, M, M * N * K, ParallelFlopCutoff);
    LeafParallelism DotLP = RowsParallel ? LeafParallelism{} : LP;
    runRange(LP, M, RowsParallel, [&](int64_t Lo, int64_t Hi) {
      for (int64_t I = Lo; I < Hi; ++I)
        for (int64_t J = 0; J < N; ++J)
          C[I * CsM + J * CsN] +=
              dotStrided(DotLP, A + I * AsM, 1, B + J * BsN, BsK, K);
    });
    return;
  }
  runRange(LP, M, shouldParallelize(LP, M, M * N * K, ParallelFlopCutoff),
           [&](int64_t Lo, int64_t Hi) {
             for (int64_t I = Lo; I < Hi; ++I)
               for (int64_t KK = 0; KK < K; ++KK) {
                 double AVal = A[I * AsM + KK * AsK];
                 const double *BRow = B + KK * BsK;
                 double *CRow = C + I * CsM;
                 for (int64_t J = 0; J < N; ++J)
                   CRow[J * CsN] += AVal * BRow[J * BsN];
               }
           });
}

void gemmGeneral(double *C, const double *A, const double *B, int64_t M,
                 int64_t N, int64_t K, int64_t CsM, int64_t CsN, int64_t AsM,
                 int64_t AsK, int64_t BsK, int64_t BsN) {
  bool WantParallel = M * N * K >= ParallelFlopCutoff;
  gemmGeneral(WantParallel ? processLeaf() : LeafParallelism{}, C, A, B, M, N,
              K, CsM, CsN, AsM, AsK, BsK, BsN);
}

void gemv(double *Y, const double *A, const double *X, int64_t M, int64_t K,
          int64_t LdA) {
  for (int64_t I = 0; I < M; ++I) {
    const double *__restrict__ ARow = A + I * LdA;
    double Sum = 0;
    for (int64_t KK = 0; KK < K; ++KK)
      Sum += ARow[KK] * X[KK];
    Y[I] += Sum;
  }
}

namespace {

/// Shared skeleton of the strided reductions: per-chunk partials combined
/// in chunk order. The chunk grid depends only on N, so every (pool, ways)
/// configuration computes bit-identical sums; a single-chunk N degenerates
/// to the plain left-to-right loop.
template <typename ChunkFn>
double reduceChunked(const LeafParallelism &LP, int64_t N,
                     const ChunkFn &Chunk) {
  int64_t NumChunks = (N + ReduceChunk - 1) / ReduceChunk;
  if (NumChunks <= 1)
    return Chunk(0, N);
  std::vector<double> Partials(static_cast<size_t>(NumChunks));
  runRange(LP, NumChunks, LP.enabled(), [&](int64_t Lo, int64_t Hi) {
    for (int64_t C = Lo; C < Hi; ++C)
      Partials[C] =
          Chunk(C * ReduceChunk, std::min((C + 1) * ReduceChunk, N));
  });
  double Sum = 0;
  for (double P : Partials)
    Sum += P;
  return Sum;
}

} // namespace

double dot(const LeafParallelism &LP, const double *A, const double *B,
           int64_t N) {
  return reduceChunked(LP, N, [&](int64_t Lo, int64_t Hi) {
    double Sum = 0;
    for (int64_t I = Lo; I < Hi; ++I)
      Sum += A[I] * B[I];
    return Sum;
  });
}

double dot(const double *A, const double *B, int64_t N) {
  return dot(LeafParallelism{}, A, B, N);
}

double dotStrided(const LeafParallelism &LP, const double *A, int64_t SA,
                  const double *B, int64_t SB, int64_t N) {
  if (SA == 1 && SB == 1)
    return dot(LP, A, B, N);
  return reduceChunked(LP, N, [&](int64_t Lo, int64_t Hi) {
    double Sum = 0;
    for (int64_t I = Lo; I < Hi; ++I)
      Sum += A[I * SA] * B[I * SB];
    return Sum;
  });
}

double dotStrided(const double *A, int64_t SA, const double *B, int64_t SB,
                  int64_t N) {
  return dotStrided(LeafParallelism{}, A, SA, B, SB, N);
}

double sumStrided(const LeafParallelism &LP, const double *A, int64_t SA,
                  int64_t N) {
  return reduceChunked(LP, N, [&](int64_t Lo, int64_t Hi) {
    double Sum = 0;
    for (int64_t I = Lo; I < Hi; ++I)
      Sum += A[I * SA];
    return Sum;
  });
}

double sumStrided(const double *A, int64_t SA, int64_t N) {
  return sumStrided(LeafParallelism{}, A, SA, N);
}

void axpy(const LeafParallelism &LP, double *Y, const double *X, double Alpha,
          int64_t N) {
  // Disjoint output ranges: any split is bitwise-identical.
  runRange(LP, N, shouldParallelize(LP, N, N, VectorParallelCutoff),
           [&](int64_t Lo, int64_t Hi) {
             for (int64_t I = Lo; I < Hi; ++I)
               Y[I] += Alpha * X[I];
           });
}

void axpy(double *Y, const double *X, double Alpha, int64_t N) {
  axpy(LeafParallelism{}, Y, X, Alpha, N);
}

void axpyStrided(const LeafParallelism &LP, double *Y, int64_t SY,
                 const double *X, int64_t SX, double Alpha, int64_t N) {
  if (SY == 1 && SX == 1) {
    axpy(LP, Y, X, Alpha, N);
    return;
  }
  runRange(LP, N, shouldParallelize(LP, N, N, VectorParallelCutoff),
           [&](int64_t Lo, int64_t Hi) {
             for (int64_t I = Lo; I < Hi; ++I)
               Y[I * SY] += Alpha * X[I * SX];
           });
}

void axpyStrided(double *Y, int64_t SY, const double *X, int64_t SX,
                 double Alpha, int64_t N) {
  axpyStrided(LeafParallelism{}, Y, SY, X, SX, Alpha, N);
}

void scaleStrided(const LeafParallelism &LP, double *Y, int64_t SY,
                  const double *X, int64_t SX, double Alpha, int64_t N) {
  runRange(LP, N, shouldParallelize(LP, N, N, VectorParallelCutoff),
           [&](int64_t Lo, int64_t Hi) {
             for (int64_t I = Lo; I < Hi; ++I)
               Y[I * SY] = Alpha * X[I * SX];
           });
}

} // namespace blas
} // namespace distal
