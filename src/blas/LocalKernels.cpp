//===- blas/LocalKernels.cpp ----------------------------------*- C++ -*-===//

#include "blas/LocalKernels.h"

#include <algorithm>

namespace distal {
namespace blas {

static constexpr int64_t BlockM = 64, BlockN = 64, BlockK = 64;

void gemm(double *C, const double *A, const double *B, int64_t M, int64_t N,
          int64_t K, int64_t LdC, int64_t LdA, int64_t LdB) {
  for (int64_t I0 = 0; I0 < M; I0 += BlockM)
    for (int64_t K0 = 0; K0 < K; K0 += BlockK)
      for (int64_t J0 = 0; J0 < N; J0 += BlockN) {
        int64_t IMax = std::min(I0 + BlockM, M);
        int64_t KMax = std::min(K0 + BlockK, K);
        int64_t JMax = std::min(J0 + BlockN, N);
        for (int64_t I = I0; I < IMax; ++I)
          for (int64_t KK = K0; KK < KMax; ++KK) {
            double AVal = A[I * LdA + KK];
            const double *BRow = B + KK * LdB;
            double *CRow = C + I * LdC;
            for (int64_t J = J0; J < JMax; ++J)
              CRow[J] += AVal * BRow[J];
          }
      }
}

void gemv(double *Y, const double *A, const double *X, int64_t M, int64_t K,
          int64_t LdA) {
  for (int64_t I = 0; I < M; ++I) {
    double Sum = 0;
    const double *ARow = A + I * LdA;
    for (int64_t KK = 0; KK < K; ++KK)
      Sum += ARow[KK] * X[KK];
    Y[I] += Sum;
  }
}

double dot(const double *A, const double *B, int64_t N) {
  double Sum = 0;
  for (int64_t I = 0; I < N; ++I)
    Sum += A[I] * B[I];
  return Sum;
}

void axpy(double *Y, const double *X, double Alpha, int64_t N) {
  for (int64_t I = 0; I < N; ++I)
    Y[I] += Alpha * X[I];
}

} // namespace blas
} // namespace distal
