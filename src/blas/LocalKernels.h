//===- blas/LocalKernels.h - Local dense leaf kernels ----------*- C++ -*-===//
///
/// \file
/// Single-processor dense kernels substituted at schedule leaves (Fig. 2
/// line 40 uses CuBLAS::GeMM; we provide a register-blocked CPU GEMM with
/// the same row-major strided interface, parallelized over the support
/// ThreadPool). These set the single-node roofline; the distribution
/// machinery above them is what DISTAL contributes.
///
//===----------------------------------------------------------------------===//

#ifndef DISTAL_BLAS_LOCALKERNELS_H
#define DISTAL_BLAS_LOCALKERNELS_H

#include <cstdint>

namespace distal {
namespace blas {

/// C[m,n] += A[m,k] * B[k,n] with row strides LdC/LdA/LdB (row-major,
/// unit column stride). Packs A/B panels and runs a register-blocked 4x32
/// micro-kernel; row panels fan out over the global ThreadPool when the
/// problem is large enough. Bitwise-deterministic at every thread count.
void gemm(double *C, const double *A, const double *B, int64_t M, int64_t N,
          int64_t K, int64_t LdC, int64_t LdA, int64_t LdB);

/// The seed's original cache-blocked (but not register-blocked, not
/// parallel) GEMM, kept as the kernel of the Interpreted executor strategy
/// so benchmarks measure the engine against a faithful seed configuration.
void gemmBlockedReference(double *C, const double *A, const double *B,
                          int64_t M, int64_t N, int64_t K, int64_t LdC,
                          int64_t LdA, int64_t LdB);

/// Fully strided GEMM: C[m*CsM + n*CsN] += A[m*AsM + k*AsK] *
/// B[k*BsK + n*BsN]. Dispatches to the blocked kernel when every innermost
/// stride is 1; otherwise picks a loop order that keeps the innermost loop
/// as dense as possible (handles transposed operand layouts).
void gemmGeneral(double *C, const double *A, const double *B, int64_t M,
                 int64_t N, int64_t K, int64_t CsM, int64_t CsN, int64_t AsM,
                 int64_t AsK, int64_t BsK, int64_t BsN);

/// y[m] += A[m,k] * x[k].
void gemv(double *Y, const double *A, const double *X, int64_t M, int64_t K,
          int64_t LdA);

/// Dot product of two contiguous vectors.
double dot(const double *A, const double *B, int64_t N);

/// Dot product with arbitrary element strides.
double dotStrided(const double *A, int64_t SA, const double *B, int64_t SB,
                  int64_t N);

/// Sum of a strided vector.
double sumStrided(const double *A, int64_t SA, int64_t N);

/// y[i] += alpha * x[i].
void axpy(double *Y, const double *X, double Alpha, int64_t N);

/// y[i*SY] += alpha * x[i*SX].
void axpyStrided(double *Y, int64_t SY, const double *X, int64_t SX,
                 double Alpha, int64_t N);

} // namespace blas
} // namespace distal

#endif // DISTAL_BLAS_LOCALKERNELS_H
