//===- blas/LocalKernels.h - Local dense leaf kernels ----------*- C++ -*-===//
///
/// \file
/// Single-processor dense kernels substituted at schedule leaves (Fig. 2
/// line 40 uses CuBLAS::GeMM; we provide a register-blocked CPU GEMM with
/// the same row-major strided interface). These set the single-node
/// roofline; the distribution machinery above them is what DISTAL
/// contributes.
///
/// Every kernel has a pool-parameterized form taking a LeafParallelism
/// handle (the ExecContext's pool plus a ways budget) as its first
/// argument; fan-out happens as sub-range jobs on that pool, so nested
/// (task x leaf) parallelism shares one thread set. The handle-free forms
/// are conveniences for standalone callers: they fan out over the
/// process-global pool when profitable, and run sequentially when invoked
/// from inside any pool's worker. All kernels are bitwise-deterministic
/// for every pool size and ways budget: parallel splits cover disjoint
/// output ranges, and reductions use a fixed chunk association independent
/// of the split.
///
//===----------------------------------------------------------------------===//

#ifndef DISTAL_BLAS_LOCALKERNELS_H
#define DISTAL_BLAS_LOCALKERNELS_H

#include <cstdint>

#include "support/ExecContext.h"

namespace distal {
namespace blas {

/// C[m,n] += A[m,k] * B[k,n] with row strides LdC/LdA/LdB (row-major,
/// unit column stride). Packs A/B panels and runs a register-blocked 4x32
/// micro-kernel; row panels fan out over \p LP when the problem is large
/// enough.
void gemm(const LeafParallelism &LP, double *C, const double *A,
          const double *B, int64_t M, int64_t N, int64_t K, int64_t LdC,
          int64_t LdA, int64_t LdB);
void gemm(double *C, const double *A, const double *B, int64_t M, int64_t N,
          int64_t K, int64_t LdC, int64_t LdA, int64_t LdB);

/// The seed's original cache-blocked (but not register-blocked, not
/// parallel) GEMM, kept as the kernel of the Interpreted executor strategy
/// so benchmarks measure the engine against a faithful seed configuration.
void gemmBlockedReference(double *C, const double *A, const double *B,
                          int64_t M, int64_t N, int64_t K, int64_t LdC,
                          int64_t LdA, int64_t LdB);

/// Fully strided GEMM: C[m*CsM + n*CsN] += A[m*AsM + k*AsK] *
/// B[k*BsK + n*BsN]. Dispatches to the blocked kernel when every innermost
/// stride is 1; otherwise picks a loop order that keeps the innermost loop
/// as dense as possible (handles transposed operand layouts).
void gemmGeneral(const LeafParallelism &LP, double *C, const double *A,
                 const double *B, int64_t M, int64_t N, int64_t K,
                 int64_t CsM, int64_t CsN, int64_t AsM, int64_t AsK,
                 int64_t BsK, int64_t BsN);
void gemmGeneral(double *C, const double *A, const double *B, int64_t M,
                 int64_t N, int64_t K, int64_t CsM, int64_t CsN, int64_t AsM,
                 int64_t AsK, int64_t BsK, int64_t BsN);

/// y[m] += A[m,k] * x[k].
void gemv(double *Y, const double *A, const double *X, int64_t M, int64_t K,
          int64_t LdA);

/// Dot product of two contiguous vectors.
double dot(const LeafParallelism &LP, const double *A, const double *B,
           int64_t N);
double dot(const double *A, const double *B, int64_t N);

/// Dot product with arbitrary element strides.
double dotStrided(const LeafParallelism &LP, const double *A, int64_t SA,
                  const double *B, int64_t SB, int64_t N);
double dotStrided(const double *A, int64_t SA, const double *B, int64_t SB,
                  int64_t N);

/// Sum of a strided vector.
double sumStrided(const LeafParallelism &LP, const double *A, int64_t SA,
                  int64_t N);
double sumStrided(const double *A, int64_t SA, int64_t N);

/// y[i] += alpha * x[i].
void axpy(const LeafParallelism &LP, double *Y, const double *X, double Alpha,
          int64_t N);
void axpy(double *Y, const double *X, double Alpha, int64_t N);

/// y[i*SY] += alpha * x[i*SX].
void axpyStrided(const LeafParallelism &LP, double *Y, int64_t SY,
                 const double *X, int64_t SX, double Alpha, int64_t N);
void axpyStrided(double *Y, int64_t SY, const double *X, int64_t SX,
                 double Alpha, int64_t N);

/// y[i*SY] = alpha * x[i*SX] — the overwrite (=) sibling of axpyStrided,
/// used by leaves running in overwrite mode after a zero-skip. Disjoint
/// output ranges: any split is bitwise-identical.
void scaleStrided(const LeafParallelism &LP, double *Y, int64_t SY,
                  const double *X, int64_t SX, double Alpha, int64_t N);

} // namespace blas
} // namespace distal

#endif // DISTAL_BLAS_LOCALKERNELS_H
