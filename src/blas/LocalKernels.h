//===- blas/LocalKernels.h - Local dense leaf kernels ----------*- C++ -*-===//
///
/// \file
/// Single-processor dense kernels substituted at schedule leaves (Fig. 2
/// line 40 uses CuBLAS::GeMM; we provide a blocked CPU GEMM with the same
/// row-major strided interface). These set the single-node roofline; the
/// distribution machinery above them is what DISTAL contributes.
///
//===----------------------------------------------------------------------===//

#ifndef DISTAL_BLAS_LOCALKERNELS_H
#define DISTAL_BLAS_LOCALKERNELS_H

#include <cstdint>

namespace distal {
namespace blas {

/// C[m,n] += A[m,k] * B[k,n] with row strides LdC/LdA/LdB (row-major,
/// unit column stride). Blocked for cache locality.
void gemm(double *C, const double *A, const double *B, int64_t M, int64_t N,
          int64_t K, int64_t LdC, int64_t LdA, int64_t LdB);

/// y[m] += A[m,k] * x[k].
void gemv(double *Y, const double *A, const double *X, int64_t M, int64_t K,
          int64_t LdA);

/// Dot product of two contiguous vectors.
double dot(const double *A, const double *B, int64_t N);

/// y[i] += alpha * x[i].
void axpy(double *Y, const double *X, double Alpha, int64_t N);

} // namespace blas
} // namespace distal

#endif // DISTAL_BLAS_LOCALKERNELS_H
